//! The process-global event sink and the sessions that own it.

use crate::event::TraceEvent;
use crate::manifest::RunManifest;
use crate::trace::Trace;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Fast-path gate: a single relaxed load decides whether [`emit`] does
/// anything at all.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Serialises sessions: at most one recording exists at a time, so
/// concurrently running tests cannot interleave their events. Held (as
/// a guard inside [`TraceSession`]) for the session's whole lifetime.
static RECORDING: Mutex<()> = Mutex::new(());

/// The active sink, if any.
static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();

fn sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    SINK.get_or_init(|| Mutex::new(None))
}

/// Ignores mutex poisoning: a panicking emitter must not silence every
/// later session in the process (tests run many in sequence).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether a trace session is currently recording. Instrumented code
/// can use this to skip preparing expensive event inputs; [`emit`]
/// checks it internally, so a plain `emit` call is already zero-cost
/// when disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Emits one event to the active session, if any. The closure only runs
/// while a session is recording, so building the event (allocations,
/// clones) costs nothing when tracing is off.
#[inline]
pub fn emit<F: FnOnce() -> TraceEvent>(f: F) {
    if !enabled() {
        return;
    }
    let line = match serde_json::to_string(&f()) {
        Ok(l) => l,
        Err(_) => return,
    };
    let mut guard = lock(sink());
    if let Some(w) = guard.as_mut() {
        let _ = writeln!(w, "{line}");
    }
}

/// An active recording: while it lives, [`emit`] appends JSONL lines to
/// its writer. Dropping the session disables tracing and flushes.
///
/// Only one session can record at a time; constructing a second one
/// blocks until the first is dropped (construct from another thread) —
/// creating one while the same thread already holds one deadlocks, so
/// don't nest sessions.
pub struct TraceSession {
    /// Present for [`TraceSession::capture`] sessions only.
    buffer: Option<Arc<Mutex<Vec<u8>>>>,
    closed: bool,
    _exclusive: MutexGuard<'static, ()>,
}

/// `Write` adapter sharing a captured in-memory buffer with the session.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        lock(&self.0).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl TraceSession {
    fn install(
        writer: Box<dyn Write + Send>,
        manifest: &RunManifest,
        buffer: Option<Arc<Mutex<Vec<u8>>>>,
    ) -> std::io::Result<TraceSession> {
        let exclusive = lock(&RECORDING);
        let mut w = writer;
        let line = serde_json::to_string(manifest)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(w, "{line}")?;
        *lock(sink()) = Some(w);
        ENABLED.store(true, Ordering::Relaxed);
        Ok(TraceSession { buffer, closed: false, _exclusive: exclusive })
    }

    /// Starts recording to `path` (truncating it), writing `manifest` as
    /// the first line.
    pub fn to_file(path: impl AsRef<Path>, manifest: &RunManifest) -> std::io::Result<Self> {
        let file = BufWriter::new(File::create(path)?);
        Self::install(Box::new(file), manifest, None)
    }

    /// Starts recording into memory; retrieve the result with
    /// [`TraceSession::finish`].
    pub fn capture(manifest: &RunManifest) -> Self {
        let buf = Arc::new(Mutex::new(Vec::new()));
        Self::install(Box::new(SharedBuf(buf.clone())), manifest, Some(buf))
            .expect("in-memory sink cannot fail")
    }

    /// Stops a [`TraceSession::capture`] session and parses everything
    /// recorded into a [`Trace`].
    ///
    /// # Panics
    /// Panics on a file-backed session (nothing to return) or if the
    /// recorded bytes fail to parse — both are programming errors, not
    /// runtime conditions.
    pub fn finish(mut self) -> Trace {
        self.close();
        let buf = self.buffer.take().expect("finish() requires a capture() session");
        let bytes = std::mem::take(&mut *lock(&buf));
        let text = String::from_utf8(bytes).expect("trace output is UTF-8");
        text.parse().expect("self-recorded trace parses")
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        ENABLED.store(false, Ordering::Relaxed);
        if let Some(mut w) = lock(sink()).take() {
            let _ = w.flush();
        }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_session_is_a_noop() {
        // Must not panic, allocate a sink, or enable anything.
        emit(|| panic!("closure must not run while disabled"));
        assert!(!enabled());
    }

    #[test]
    fn capture_records_manifest_and_events_in_order() {
        let manifest = RunManifest::new("test", 7, 2, 1, 1);
        let session = TraceSession::capture(&manifest);
        assert!(enabled());
        for ev in TraceEvent::samples() {
            emit(|| ev.clone());
        }
        let trace = session.finish();
        assert!(!enabled());
        assert_eq!(trace.manifest.as_ref(), Some(&manifest));
        assert_eq!(trace.events, TraceEvent::samples());
    }

    #[test]
    fn sessions_serialise_with_each_other() {
        // A second session started from another thread waits for the
        // first to drop instead of interleaving events.
        let m = RunManifest::new("a", 0, 1, 1, 1);
        let s1 = TraceSession::capture(&m);
        emit(|| TraceEvent::FaultRecovered { worker: 0 });
        let t2 = std::thread::spawn(move || {
            let s2 = TraceSession::capture(&RunManifest::new("b", 0, 1, 1, 1));
            emit(|| TraceEvent::FaultRecovered { worker: 99 });
            s2.finish()
        });
        // Give the thread a moment to block on the recording lock.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t1 = s1.finish();
        let t2 = t2.join().unwrap();
        assert_eq!(t1.events, vec![TraceEvent::FaultRecovered { worker: 0 }]);
        assert_eq!(t2.events, vec![TraceEvent::FaultRecovered { worker: 99 }]);
    }
}
