//! Reading recorded traces: parsing, summarizing into resource totals,
//! and diffing two traces to the first diverging event.

use crate::event::TraceEvent;
use crate::manifest::RunManifest;
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// Errors loading or interpreting a trace file.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The file could not be read.
    Io(String),
    /// A line failed to parse as a manifest or event.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        msg: String,
    },
    /// The operation needs a manifest but the trace has none.
    MissingManifest,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceError::Parse { line, msg } => write!(f, "trace line {line}: {msg}"),
            TraceError::MissingManifest => write!(f, "trace has no manifest line"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A parsed trace: the manifest (when present) plus every event, both
/// typed and as the raw JSONL lines they came from (the unit [`diff`]
/// compares, so formatting differences count as differences).
#[derive(Debug, Clone)]
pub struct Trace {
    /// The first-line manifest, if the trace has one.
    pub manifest: Option<RunManifest>,
    /// Every event, in emission order.
    pub events: Vec<TraceEvent>,
    /// The raw JSONL line of each event (manifest line excluded),
    /// parallel to `events`.
    pub event_lines: Vec<String>,
}

impl FromStr for Trace {
    type Err = TraceError;

    fn from_str(text: &str) -> Result<Self, TraceError> {
        let mut manifest = None;
        let mut events = Vec::new();
        let mut event_lines = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if i == 0 {
                if let Ok(m) = serde_json::from_str::<RunManifest>(line) {
                    manifest = Some(m);
                    continue;
                }
            }
            let ev = serde_json::from_str::<TraceEvent>(line)
                .map_err(|e| TraceError::Parse { line: i + 1, msg: e.to_string() })?;
            events.push(ev);
            event_lines.push(line.to_string());
        }
        Ok(Trace { manifest, events, event_lines })
    }
}

impl Trace {
    /// Loads and parses a JSONL trace file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io(e.to_string()))?;
        text.parse()
    }
}

/// Aggregate resource totals reconstructed from a trace's `RoundEnd`
/// events — field-for-field the same quantities as
/// `fedmp_fl::ResourceTotals`, computed with the same arithmetic (and
/// therefore bit-exactly equal to it for a trace of the same run; f64
/// values survive the JSON round trip exactly).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct TraceTotals {
    /// Total virtual wall time (s).
    pub wall_secs: f64,
    /// Summed per-worker computation time (s·workers).
    pub compute_secs: f64,
    /// Summed per-worker communication time (s·workers).
    pub comm_secs: f64,
    /// Summed barrier idle time (s·workers).
    pub idle_secs: f64,
    /// Rounds observed (`RoundEnd` events).
    pub rounds: usize,
}

impl TraceTotals {
    /// Fraction of fleet-seconds spent productive (compute + comm).
    pub fn utilisation(&self) -> f64 {
        let busy = self.compute_secs + self.comm_secs;
        let total = busy + self.idle_secs;
        if total <= 0.0 {
            0.0
        } else {
            busy / total
        }
    }
}

/// Reduces a trace to [`TraceTotals`] using the manifest's worker count,
/// replicating `fedmp_fl::resource_totals` term by term: per round,
/// `wall += round_time`, `compute += n·mean_comp`, `comm += n·mean_comm`
/// and `idle += n·max(0, round_time − mean_comp − mean_comm)`.
pub fn summarize(trace: &Trace) -> Result<TraceTotals, TraceError> {
    let manifest = trace.manifest.as_ref().ok_or(TraceError::MissingManifest)?;
    let n = manifest.workers as f64;
    let mut t = TraceTotals::default();
    for ev in &trace.events {
        if let TraceEvent::RoundEnd { round_time, mean_comp, mean_comm, .. } = ev {
            t.wall_secs += round_time;
            t.compute_secs += n * mean_comp;
            t.comm_secs += n * mean_comm;
            t.idle_secs += n * (round_time - mean_comp - mean_comm).max(0.0);
            t.rounds += 1;
        }
    }
    Ok(t)
}

/// The first point at which two traces' event streams disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 0-based event index (manifest excluded).
    pub index: usize,
    /// The left trace's raw line, or `"<end of trace>"`.
    pub a: String,
    /// The right trace's raw line, or `"<end of trace>"`.
    pub b: String,
}

/// Result of [`diff`]: the first event divergence (if any) plus
/// informational manifest differences. Manifest fields — notably
/// `threads` — are *expected* to differ between runs that should
/// produce identical events, so they never count as divergence.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// First diverging event, `None` when the event streams are
    /// identical.
    pub divergence: Option<Divergence>,
    /// Human-readable notes on manifest fields that differ.
    pub manifest_notes: Vec<String>,
    /// Event count of the left trace.
    pub len_a: usize,
    /// Event count of the right trace.
    pub len_b: usize,
}

impl TraceDiff {
    /// Whether the event streams diverge.
    pub fn is_divergent(&self) -> bool {
        self.divergence.is_some()
    }
}

/// Compares two traces event-by-event (raw JSONL lines, in order) and
/// reports the first index where they disagree; a trace that is a
/// strict prefix of the other diverges at the shorter length.
pub fn diff(a: &Trace, b: &Trace) -> TraceDiff {
    let mut manifest_notes = Vec::new();
    match (&a.manifest, &b.manifest) {
        (Some(ma), Some(mb)) => {
            for ((name, va), (_, vb)) in ma.field_strings().iter().zip(mb.field_strings()) {
                if *va != vb {
                    manifest_notes.push(format!("manifest.{name}: {va} vs {vb}"));
                }
            }
        }
        (Some(_), None) => manifest_notes.push("right trace has no manifest".into()),
        (None, Some(_)) => manifest_notes.push("left trace has no manifest".into()),
        (None, None) => {}
    }

    let end = "<end of trace>".to_string();
    let n = a.event_lines.len().max(b.event_lines.len());
    let mut divergence = None;
    for i in 0..n {
        let la = a.event_lines.get(i);
        let lb = b.event_lines.get(i);
        if la != lb {
            divergence = Some(Divergence {
                index: i,
                a: la.cloned().unwrap_or_else(|| end.clone()),
                b: lb.cloned().unwrap_or_else(|| end.clone()),
            });
            break;
        }
    }
    TraceDiff { divergence, manifest_notes, len_a: a.event_lines.len(), len_b: b.event_lines.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_end(round: usize, rt: f64, comp: f64, comm: f64) -> String {
        serde_json::to_string(&TraceEvent::RoundEnd {
            round,
            sim_time: rt * (round + 1) as f64,
            round_time: rt,
            mean_comp: comp,
            mean_comm: comm,
            train_loss: Some(1.0),
            eval_loss: None,
            eval_metric: None,
        })
        .unwrap()
    }

    fn trace_of(lines: &[String], manifest: Option<&RunManifest>) -> Trace {
        let mut text = String::new();
        if let Some(m) = manifest {
            text.push_str(&serde_json::to_string(m).unwrap());
            text.push('\n');
        }
        for l in lines {
            text.push_str(l);
            text.push('\n');
        }
        text.parse().unwrap()
    }

    #[test]
    fn summarize_replicates_resource_totals_formula() {
        let m = RunManifest::new("t", 0, 4, 10, 1);
        let lines: Vec<String> = (0..10).map(|r| round_end(r, 5.0, 2.0, 1.0)).collect();
        let t = summarize(&trace_of(&lines, Some(&m))).unwrap();
        assert_eq!(t.rounds, 10);
        assert!((t.wall_secs - 50.0).abs() < 1e-12);
        assert!((t.compute_secs - 80.0).abs() < 1e-12);
        assert!((t.comm_secs - 40.0).abs() < 1e-12);
        assert!((t.idle_secs - 80.0).abs() < 1e-12);
        assert!((t.utilisation() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn summarize_without_manifest_errors() {
        let lines = vec![round_end(0, 1.0, 0.5, 0.25)];
        assert_eq!(summarize(&trace_of(&lines, None)), Err(TraceError::MissingManifest));
    }

    #[test]
    fn diff_finds_first_divergence_and_prefixes() {
        let m = RunManifest::new("t", 0, 2, 3, 1);
        let base: Vec<String> = (0..3).map(|r| round_end(r, 1.0, 0.5, 0.25)).collect();
        let mut changed = base.clone();
        changed[1] = round_end(1, 2.0, 0.5, 0.25);

        let same = diff(&trace_of(&base, Some(&m)), &trace_of(&base, Some(&m)));
        assert!(!same.is_divergent());
        assert!(same.manifest_notes.is_empty());

        let d = diff(&trace_of(&base, Some(&m)), &trace_of(&changed, Some(&m)));
        assert_eq!(d.divergence.as_ref().unwrap().index, 1);

        let short = diff(&trace_of(&base[..2], Some(&m)), &trace_of(&base, Some(&m)));
        let div = short.divergence.unwrap();
        assert_eq!(div.index, 2);
        assert_eq!(div.a, "<end of trace>");
    }

    #[test]
    fn thread_count_difference_is_a_note_not_a_divergence() {
        let m1 = RunManifest::new("t", 0, 2, 1, 1);
        let m4 = RunManifest::new("t", 0, 2, 1, 4);
        let lines = vec![round_end(0, 1.0, 0.5, 0.25)];
        let d = diff(&trace_of(&lines, Some(&m1)), &trace_of(&lines, Some(&m4)));
        assert!(!d.is_divergent());
        assert_eq!(d.manifest_notes, vec!["manifest.threads: 1 vs 4".to_string()]);
    }

    #[test]
    fn bad_lines_report_their_line_number() {
        let err = "{\"RoundStart\":{}}\nnot json\n".parse::<Trace>().unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 1), // RoundStart missing fields
            other => panic!("unexpected {other:?}"),
        }
    }
}
