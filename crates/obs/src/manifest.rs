//! Run manifests: the first line of every trace file, carrying enough
//! to reproduce the run that emitted it.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The trace-format identifier written into every manifest. Bump when
/// an event's fields change incompatibly.
pub const SCHEMA_VERSION: &str = "fedmp-trace/v1";

/// The reproducibility record written as the first JSONL line of a
/// trace: everything needed to re-run the experiment that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Trace-format version ([`SCHEMA_VERSION`]).
    pub schema: String,
    /// Engine / method name (e.g. `"FedMP"`, `"Syn-FL"`).
    pub engine: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Worker count (the `n` the summarizer multiplies means by).
    pub workers: usize,
    /// Configured aggregation rounds.
    pub rounds: usize,
    /// Kernel worker threads in effect (`FEDMP_THREADS` or the core
    /// count). Informational: same-seed traces are identical across
    /// thread counts, so `diff` reports this field separately rather
    /// than as a divergence.
    pub threads: usize,
    /// GEMM dispatch path in effect (`"avx2"` / `"scalar"`, from
    /// `FEDMP_SIMD` or runtime detection). Informational like
    /// `threads`, but with a twist: the paths differ in FMA rounding,
    /// so event streams only diff clean between runs that *agree* on
    /// this field. Empty in traces predating the field
    /// (`serde(default)`).
    #[serde(default)]
    pub simd_path: String,
    /// FNV-1a 64-bit hash (hex) of the serialised experiment
    /// configuration — see [`config_hash`].
    pub config_hash: String,
    /// Crate versions that produced the trace, by crate name.
    pub crate_versions: BTreeMap<String, String>,
}

impl RunManifest {
    /// A manifest with the schema version filled in and everything else
    /// from the arguments; extend `crate_versions` and `config_hash`
    /// after construction as needed.
    pub fn new(engine: &str, seed: u64, workers: usize, rounds: usize, threads: usize) -> Self {
        let mut crate_versions = BTreeMap::new();
        crate_versions.insert("fedmp-obs".to_string(), crate::VERSION.to_string());
        RunManifest {
            schema: SCHEMA_VERSION.to_string(),
            engine: engine.to_string(),
            seed,
            workers,
            rounds,
            threads,
            simd_path: String::new(),
            config_hash: String::new(),
            crate_versions,
        }
    }

    /// Renders each field as `(name, json)` pairs — the unit `diff`
    /// compares manifests by.
    pub fn field_strings(&self) -> Vec<(&'static str, String)> {
        let js = |s: &str| format!("{s:?}");
        vec![
            ("schema", js(&self.schema)),
            ("engine", js(&self.engine)),
            ("seed", self.seed.to_string()),
            ("workers", self.workers.to_string()),
            ("rounds", self.rounds.to_string()),
            ("threads", self.threads.to_string()),
            ("simd_path", js(&self.simd_path)),
            ("config_hash", js(&self.config_hash)),
            ("crate_versions", serde_json::to_string(&self.crate_versions).unwrap_or_default()),
        ]
    }
}

/// FNV-1a 64-bit hash of a serialised configuration, as a 16-digit hex
/// string. Stable across platforms and process runs (unlike
/// `DefaultHasher`), so manifests hashed on different machines agree.
pub fn config_hash(serialised: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in serialised.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let a = config_hash("{\"seed\":42}");
        assert_eq!(a, config_hash("{\"seed\":42}"));
        assert_ne!(a, config_hash("{\"seed\":43}"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn manifest_round_trips_through_serde() {
        let mut m = RunManifest::new("FedMP", 42, 10, 24, 4);
        m.config_hash = config_hash("spec");
        m.crate_versions.insert("fedmp-fl".into(), "0.1.0".into());
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
