//! The typed trace events every instrumented subsystem emits.

use serde::{Deserialize, Serialize};

/// One structured trace event, serialised as a single JSONL line with
/// the variant name as the outer key (serde's externally-tagged form),
/// e.g. `{"RoundStart":{"round":0,"sim_time":0.0,"online":[0,1]}}`.
///
/// Field units follow the virtual clock throughout: `*_secs` are
/// **simulated** seconds (Eq. 5 of the paper), never host wall time, and
/// `bytes_*` are **on-wire** bytes after the width-compensation cost
/// scale — the same quantities the completion-time results are computed
/// from. See `docs/TRACE_SCHEMA.md` for the full field reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A synchronisation round is starting on the parameter server.
    RoundStart {
        /// Round index `k` (0-based; for the async engines this is the
        /// aggregation-event index).
        round: usize,
        /// Cumulative virtual time (s) when the round starts.
        sim_time: f64,
        /// Workers participating this round, in index order. Empty when
        /// fault injection took the whole fleet offline.
        online: Vec<usize>,
    },
    /// One worker finished its local training for the round.
    LocalTrain {
        /// Round index.
        round: usize,
        /// Worker index.
        worker: usize,
        /// Pruning ratio this worker trained at (0 = full model).
        ratio: f32,
        /// Mean local training loss over the round's τ iterations.
        loss: f32,
        /// Loss improvement `first − last` across the round (the bandit
        /// reward numerator).
        delta_loss: f32,
        /// Local iterations performed.
        tau: usize,
        /// Training samples processed.
        samples: usize,
        /// Virtual computation seconds (Eq. 5 compute term).
        comp_secs: f64,
        /// Virtual communication seconds (download + upload).
        comm_secs: f64,
        /// Bytes downloaded from the PS (sub-model), after cost scaling.
        bytes_down: f64,
        /// Bytes uploaded to the PS (trained model), after cost scaling.
        bytes_up: f64,
    },
    /// An E-UCB agent received the reward for its pending arm. Events
    /// appear in worker-index order within a round; attribution to a
    /// worker is positional (the agent does not know its owner).
    BanditDecision {
        /// The arm (pruning ratio) the reward is for.
        arm: f32,
        /// Observed Eq. 8 reward.
        reward: f32,
        /// Partition-tree leaf count after this observation — the
        /// posterior granularity of the agent.
        regions: usize,
    },
    /// The PS merged the round's arrivals into a new global model.
    Aggregate {
        /// Round index.
        round: usize,
        /// Aggregation scheme (`"R2SP"`, `"BSP"`, `"FedAvg"`,
        /// `"FedAvg+topk"`, `"AsynFedAvg"`, `"AsynR2SP"`).
        scheme: String,
        /// Models merged (arrivals that met the deadline).
        participants: usize,
    },
    /// Fault injection took a worker offline.
    FaultInjected {
        /// Worker index.
        worker: usize,
        /// Further full rounds the worker stays offline after the
        /// current one.
        down_rounds: u32,
    },
    /// A previously failed worker rejoined the fleet.
    FaultRecovered {
        /// Worker index.
        worker: usize,
    },
    /// The PS received a corrupt upload frame and asked the worker to
    /// resend it (threaded runtime only). One event per retransmit
    /// request, in worker-index order within the round.
    FrameRetransmit {
        /// Round index.
        round: usize,
        /// Worker whose frame was corrupt.
        worker: usize,
        /// Retransmit attempt number (1-based).
        attempt: u32,
        /// Exponential-backoff delay charged to the worker's virtual
        /// arrival time for this attempt (`base · 2^(attempt−1)`).
        backoff_secs: f64,
    },
    /// A worker's round contribution was discarded: its upload missed
    /// the §V-A deadline, exhausted the retransmit budget, was lost in
    /// transit, or the worker crashed mid-round.
    WorkerExcluded {
        /// Round index.
        round: usize,
        /// Worker index.
        worker: usize,
        /// Why the contribution was discarded: `"deadline"`,
        /// `"corrupt"`, `"dropped"` or `"crashed"`.
        reason: String,
    },
    /// A crashed worker thread was restarted with a fresh channel pair
    /// and re-enters the fleet this round (threaded runtime only).
    WorkerRejoined {
        /// Round index.
        round: usize,
        /// Worker index.
        worker: usize,
    },
    /// The socket runtime (re-)established a transport connection to a
    /// worker node after a fault (initial, fault-free connections are
    /// silent so chaos-off socket traces stay identical to the loop
    /// engine's).
    ConnEstablished {
        /// Round index the connection was established for.
        round: usize,
        /// Worker index.
        worker: usize,
        /// Accept/connect attempts spent before the connection stood
        /// (1 = first try).
        attempts: u32,
    },
    /// A frame of a worker's model exchange never arrived: the chaos
    /// plan dropped it at the packet level and the PS's delivery
    /// deadline lapsed (socket runtime only; emitted post-barrier in
    /// worker order, immediately before the worker's `WorkerExcluded`).
    FrameTimeout {
        /// Round index.
        round: usize,
        /// Worker index.
        worker: usize,
        /// Which leg was lost: `"down"` (PS → worker dispatch) or
        /// `"up"` (worker → PS upload).
        direction: String,
    },
    /// A worker node's connection reset mid-round — the socket runtime's
    /// observation of a crashed worker process (EOF / reset on the
    /// uplink). Emitted post-barrier in worker order, immediately before
    /// the worker's `WorkerExcluded` with reason `"crashed"`.
    ConnReset {
        /// Round index.
        round: usize,
        /// Worker index.
        worker: usize,
    },
    /// A crashed worker node process was relaunched by the PS (socket
    /// runtime's analogue of the threaded runtime's thread respawn).
    /// Emitted at the start of the round, immediately before the
    /// worker's `ConnEstablished` and `WorkerRejoined`.
    NodeRespawned {
        /// Round index the node rejoins in.
        round: usize,
        /// Worker index.
        worker: usize,
        /// How many times this worker's node has been respawned so far
        /// in the run (1-based).
        generation: u32,
    },
    /// The PS aggregated a *partial* round: a quorum of uploads arrived
    /// but at least one online worker's contribution was excluded.
    QuorumAggregate {
        /// Round index.
        round: usize,
        /// Minimum uploads required to aggregate.
        quorum: usize,
        /// Uploads actually merged.
        participants: usize,
        /// Online workers whose contributions were excluded.
        excluded: usize,
    },
    /// The compression policy resolved a worker's codec pair for a
    /// round (emitted only by compression-enabled engines, after
    /// `RoundStart`, one per online worker in index order).
    CodecSelected {
        /// Round index.
        round: usize,
        /// Worker index.
        worker: usize,
        /// Downlink codec label (e.g. `"dense-f32"`, `"dense-f16"`).
        downlink: String,
        /// Uplink codec label (e.g. `"topk-int8(0.1)"`).
        uplink: String,
        /// Whether the policy classified the device's link as slow
        /// (bandwidth at or below the policy threshold).
        slow_link: bool,
    },
    /// One direction of a worker's model exchange was encoded with a
    /// wire-v2 codec. Two events per delivered worker (down, then up),
    /// immediately before its `LocalTrain`.
    CompressionApplied {
        /// Round index.
        round: usize,
        /// Worker index.
        worker: usize,
        /// `"down"` (PS → worker) or `"up"` (worker → PS).
        direction: String,
        /// Codec label the payload was encoded with.
        codec: String,
        /// What the same snapshot would cost dense (`f32`), bytes.
        dense_bytes: u64,
        /// Actual encoded frame size, bytes.
        wire_bytes: u64,
    },
    /// A population-scale round sampled its client cohort (emitted by
    /// the hierarchical engines immediately before `RoundStart`).
    CohortSampled {
        /// Round index.
        round: usize,
        /// Total population size the cohort was drawn from.
        population: u64,
        /// Clients sampled this round (without replacement).
        cohort: usize,
        /// Shard reducers the cohort streams into.
        shards: usize,
        /// Edge aggregators the shards fan in to.
        edges: usize,
    },
    /// A streaming shard reducer finished folding its slice of the
    /// cohort into its exact partial sum (one event per shard, in shard
    /// order, after the round's per-client events).
    ShardReduced {
        /// Round index.
        round: usize,
        /// Shard index (0-based, cohort-contiguous).
        shard: usize,
        /// Clients folded into this shard (delivered ones only).
        clients: usize,
        /// Peak tracked allocation of the reducer in bytes: the exact
        /// accumulator state plus the largest single in-flight client
        /// update — a function of model shape, **not** of cohort size.
        peak_bytes: u64,
    },
    /// An edge aggregator merged its shards' partial sums and uploaded
    /// the result to the cloud PS (one event per edge, in edge order,
    /// after the round's `ShardReduced` events).
    EdgeAggregate {
        /// Round index.
        round: usize,
        /// Edge aggregator index (0-based).
        edge: usize,
        /// Shard reducers merged at this edge.
        shards: usize,
        /// Clients covered by those shards (delivered ones only).
        clients: usize,
        /// Whether the edge's partial reached the cloud PS (false when
        /// edge-tier chaos crashed or dropped the upload).
        delivered: bool,
        /// Checksum-failure retransmits of the edge→cloud frame.
        retries: u32,
    },
    /// Kernel-scheduler activity since the previous `KernelDispatch`
    /// event (one is emitted per round). Counters come from
    /// `tensor::parallel` and are **thread-count-invariant**: they count
    /// `for_each_band` invocations and the bands each decomposed into,
    /// both functions of problem shape only — so same-seed runs at
    /// different `FEDMP_THREADS` produce identical events.
    /// The four `gemm_*` path counters record which kernel the GEMM
    /// dispatch selected (`simd`/`scalar` × `dense`/`pruned`); they are
    /// thread-count-invariant for a fixed `FEDMP_SIMD` setting but —
    /// like the thread count itself — differ across settings, so trace
    /// diffs must compare runs with the same `FEDMP_SIMD`.
    KernelDispatch {
        /// Round index.
        round: usize,
        /// `for_each_band` invocations this round.
        dispatches: u64,
        /// Output bands those invocations decomposed into.
        bands: u64,
        /// GEMMs that ran the SIMD kernel on dense operands.
        #[serde(default)]
        gemm_simd_dense: u64,
        /// GEMMs that ran the scalar kernel on dense operands.
        #[serde(default)]
        gemm_scalar_dense: u64,
        /// GEMMs that ran the SIMD kernel on a pruning-aware fast path.
        #[serde(default)]
        gemm_simd_pruned: u64,
        /// GEMMs that ran the scalar kernel on a pruning-aware fast path.
        #[serde(default)]
        gemm_scalar_pruned: u64,
    },
    /// A round completed; mirrors the engine's `RoundRecord`.
    RoundEnd {
        /// Round index.
        round: usize,
        /// Cumulative virtual time (s) at the end of the round.
        sim_time: f64,
        /// The round's duration `T^k = maxₙ Tₙ` (virtual seconds),
        /// after any deadline cut.
        round_time: f64,
        /// Mean computation seconds across participating workers.
        mean_comp: f64,
        /// Mean communication seconds across participating workers.
        mean_comm: f64,
        /// Mean local training loss (`None` when no worker trained,
        /// i.e. an all-offline fault round).
        train_loss: Option<f32>,
        /// Test loss, when this round was evaluated.
        eval_loss: Option<f32>,
        /// Test metric, when evaluated: accuracy for classifiers,
        /// perplexity for language models.
        eval_metric: Option<f32>,
    },
}

impl TraceEvent {
    /// Every event kind this enum can emit, in definition order.
    pub const KINDS: [&'static str; 21] = [
        "RoundStart",
        "LocalTrain",
        "BanditDecision",
        "Aggregate",
        "FaultInjected",
        "FaultRecovered",
        "FrameRetransmit",
        "WorkerExcluded",
        "WorkerRejoined",
        "ConnEstablished",
        "FrameTimeout",
        "ConnReset",
        "NodeRespawned",
        "QuorumAggregate",
        "CodecSelected",
        "CompressionApplied",
        "CohortSampled",
        "ShardReduced",
        "EdgeAggregate",
        "KernelDispatch",
        "RoundEnd",
    ];

    /// The variant name — identical to the outer JSON key of the
    /// serialised form.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RoundStart { .. } => "RoundStart",
            TraceEvent::LocalTrain { .. } => "LocalTrain",
            TraceEvent::BanditDecision { .. } => "BanditDecision",
            TraceEvent::Aggregate { .. } => "Aggregate",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::FaultRecovered { .. } => "FaultRecovered",
            TraceEvent::FrameRetransmit { .. } => "FrameRetransmit",
            TraceEvent::WorkerExcluded { .. } => "WorkerExcluded",
            TraceEvent::WorkerRejoined { .. } => "WorkerRejoined",
            TraceEvent::ConnEstablished { .. } => "ConnEstablished",
            TraceEvent::FrameTimeout { .. } => "FrameTimeout",
            TraceEvent::ConnReset { .. } => "ConnReset",
            TraceEvent::NodeRespawned { .. } => "NodeRespawned",
            TraceEvent::QuorumAggregate { .. } => "QuorumAggregate",
            TraceEvent::CodecSelected { .. } => "CodecSelected",
            TraceEvent::CompressionApplied { .. } => "CompressionApplied",
            TraceEvent::CohortSampled { .. } => "CohortSampled",
            TraceEvent::ShardReduced { .. } => "ShardReduced",
            TraceEvent::EdgeAggregate { .. } => "EdgeAggregate",
            TraceEvent::KernelDispatch { .. } => "KernelDispatch",
            TraceEvent::RoundEnd { .. } => "RoundEnd",
        }
    }

    /// One representative instance of every variant, in [`Self::KINDS`]
    /// order — used by the schema-coverage test and doc examples.
    pub fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RoundStart { round: 0, sim_time: 0.0, online: vec![0, 1] },
            TraceEvent::LocalTrain {
                round: 0,
                worker: 0,
                ratio: 0.4,
                loss: 2.1,
                delta_loss: 0.2,
                tau: 10,
                samples: 320,
                comp_secs: 3.5,
                comm_secs: 1.2,
                bytes_down: 1.0e6,
                bytes_up: 1.0e6,
            },
            TraceEvent::BanditDecision { arm: 0.4, reward: 0.05, regions: 3 },
            TraceEvent::Aggregate { round: 0, scheme: "R2SP".into(), participants: 2 },
            TraceEvent::FaultInjected { worker: 1, down_rounds: 2 },
            TraceEvent::FaultRecovered { worker: 1 },
            TraceEvent::FrameRetransmit { round: 0, worker: 2, attempt: 1, backoff_secs: 0.5 },
            TraceEvent::WorkerExcluded { round: 0, worker: 2, reason: "corrupt".into() },
            TraceEvent::WorkerRejoined { round: 1, worker: 2 },
            TraceEvent::ConnEstablished { round: 1, worker: 2, attempts: 1 },
            TraceEvent::FrameTimeout { round: 0, worker: 2, direction: "up".into() },
            TraceEvent::ConnReset { round: 0, worker: 2 },
            TraceEvent::NodeRespawned { round: 1, worker: 2, generation: 1 },
            TraceEvent::QuorumAggregate { round: 0, quorum: 2, participants: 2, excluded: 1 },
            TraceEvent::CodecSelected {
                round: 0,
                worker: 2,
                downlink: "dense-f16".into(),
                uplink: "topk-int8(0.1)".into(),
                slow_link: true,
            },
            TraceEvent::CompressionApplied {
                round: 0,
                worker: 2,
                direction: "up".into(),
                codec: "topk-int8(0.1)".into(),
                dense_bytes: 1_000_000,
                wire_bytes: 125_000,
            },
            TraceEvent::CohortSampled {
                round: 0,
                population: 100_000,
                cohort: 256,
                shards: 8,
                edges: 2,
            },
            TraceEvent::ShardReduced { round: 0, shard: 3, clients: 32, peak_bytes: 5_100_000 },
            TraceEvent::EdgeAggregate {
                round: 0,
                edge: 1,
                shards: 4,
                clients: 128,
                delivered: true,
                retries: 0,
            },
            TraceEvent::KernelDispatch {
                round: 0,
                dispatches: 96,
                bands: 384,
                gemm_simd_dense: 60,
                gemm_scalar_dense: 0,
                gemm_simd_pruned: 12,
                gemm_scalar_pruned: 0,
            },
            TraceEvent::RoundEnd {
                round: 0,
                sim_time: 4.8,
                round_time: 4.8,
                mean_comp: 3.5,
                mean_comm: 1.2,
                train_loss: Some(2.1),
                eval_loss: Some(2.0),
                eval_metric: Some(0.31),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_cover_every_kind_in_order() {
        let kinds: Vec<&str> = TraceEvent::samples().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, TraceEvent::KINDS);
    }

    #[test]
    fn serialised_form_is_tagged_with_kind() {
        for ev in TraceEvent::samples() {
            let json = serde_json::to_string(&ev).unwrap();
            assert!(
                json.starts_with(&format!("{{\"{}\":", ev.kind())),
                "{json} not tagged {}",
                ev.kind()
            );
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev);
        }
    }
}
