//! The FedMP model zoo.
//!
//! Four CNN-family classifiers matching the paper's evaluation tasks plus
//! the §VI LSTM language model. Each constructor takes a `width`
//! multiplier so tests and benchmarks can trade fidelity for speed — the
//! architectural features pruning interacts with (conv stacks, BN,
//! pooling, FC heads, residual blocks) are preserved at every width.
//!
//! | paper model | paper dataset | constructor | input |
//! |---|---|---|---|
//! | CNN (2×conv5×5 + FC-256) | MNIST | [`cnn_mnist`] | 1×28×28, 10 classes |
//! | AlexNet | CIFAR-10 | [`alexnet_cifar`] | 3×32×32, 10 classes |
//! | VGG-19 (conv stacks + BN) | EMNIST | [`vgg_emnist`] | 1×28×28, 62 classes |
//! | ResNet-50 (bottleneck-style residual stages) | Tiny-ImageNet | [`resnet_tiny`] | 3×64×64, 200 classes |
//! | 2-layer LSTM | Penn TreeBank | [`lstm_ptb`] | token ids |

use crate::activation::{Dropout, ReLU};
use crate::batchnorm::BatchNorm2d;
use crate::container::{LayerNode, ResidualBlock, Sequential};
use crate::conv_layer::Conv2d;
use crate::flatten::Flatten;
use crate::linear::Linear;
use crate::lstm::LstmLm;
use crate::pool_layer::{AvgPool2d, MaxPool2d};
use rand::rngs::StdRng;

/// Scales a base width, keeping at least 2 units so every layer stays
/// prunable.
fn scaled(base: usize, width: f32) -> usize {
    ((base as f32 * width).round() as usize).max(2)
}

/// The paper's CNN for MNIST (§V-A): two 5×5 convolutions, a 256-unit
/// fully connected layer and a 10-way softmax head.
pub fn cnn_mnist(width: f32, rng: &mut StdRng) -> Sequential {
    let c1 = scaled(32, width);
    let c2 = scaled(64, width);
    let fc = scaled(256, width);
    Sequential::new(vec![
        LayerNode::Conv2d(Conv2d::new(1, c1, 5, 1, 2, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::MaxPool2d(MaxPool2d::new(2)),
        LayerNode::Conv2d(Conv2d::new(c1, c2, 5, 1, 2, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::MaxPool2d(MaxPool2d::new(2)),
        LayerNode::Flatten(Flatten::new()),
        LayerNode::Linear(Linear::new(c2 * 7 * 7, fc, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::Linear(Linear::new(fc, 10, rng)),
    ])
}

/// AlexNet-style classifier adapted to 32×32 CIFAR-like inputs: five
/// convolution layers with interleaved pooling and a dropout-regularised
/// two-layer FC head.
pub fn alexnet_cifar(width: f32, rng: &mut StdRng) -> Sequential {
    let c = [
        scaled(64, width),
        scaled(192, width),
        scaled(384, width),
        scaled(256, width),
        scaled(256, width),
    ];
    let f1 = scaled(512, width);
    let f2 = scaled(256, width);
    Sequential::new(vec![
        LayerNode::Conv2d(Conv2d::new(3, c[0], 3, 1, 1, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::MaxPool2d(MaxPool2d::new(2)), // 32 → 16
        LayerNode::Conv2d(Conv2d::new(c[0], c[1], 3, 1, 1, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::MaxPool2d(MaxPool2d::new(2)), // 16 → 8
        LayerNode::Conv2d(Conv2d::new(c[1], c[2], 3, 1, 1, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::Conv2d(Conv2d::new(c[2], c[3], 3, 1, 1, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::Conv2d(Conv2d::new(c[3], c[4], 3, 1, 1, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::MaxPool2d(MaxPool2d::new(2)), // 8 → 4
        LayerNode::Flatten(Flatten::new()),
        LayerNode::Dropout(Dropout::new(0.3, 17)),
        LayerNode::Linear(Linear::new(c[4] * 4 * 4, f1, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::Dropout(Dropout::new(0.3, 18)),
        LayerNode::Linear(Linear::new(f1, f2, rng)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::Linear(Linear::new(f2, 10, rng)),
    ])
}

/// VGG-style classifier for 28×28 EMNIST-like inputs (62 classes):
/// batch-normalised double/quadruple conv stacks in the VGG-19 pattern.
pub fn vgg_emnist(width: f32, rng: &mut StdRng) -> Sequential {
    let s1 = scaled(64, width);
    let s2 = scaled(128, width);
    let s3 = scaled(256, width);
    let fc = scaled(256, width);
    let mut layers = Vec::new();
    let push_conv = |layers: &mut Vec<LayerNode>, ic: usize, oc: usize, rng: &mut StdRng| {
        layers.push(LayerNode::Conv2d(Conv2d::new(ic, oc, 3, 1, 1, rng)));
        layers.push(LayerNode::BatchNorm2d(BatchNorm2d::new(oc)));
        layers.push(LayerNode::ReLU(ReLU::new()));
    };
    push_conv(&mut layers, 1, s1, rng);
    push_conv(&mut layers, s1, s1, rng);
    layers.push(LayerNode::MaxPool2d(MaxPool2d::new(2))); // 28 → 14
    push_conv(&mut layers, s1, s2, rng);
    push_conv(&mut layers, s2, s2, rng);
    layers.push(LayerNode::MaxPool2d(MaxPool2d::new(2))); // 14 → 7
    push_conv(&mut layers, s2, s3, rng);
    push_conv(&mut layers, s3, s3, rng);
    push_conv(&mut layers, s3, s3, rng);
    push_conv(&mut layers, s3, s3, rng);
    layers.push(LayerNode::MaxPool2d(MaxPool2d::new(2))); // 7 → 3
    layers.push(LayerNode::Flatten(Flatten::new()));
    layers.push(LayerNode::Linear(Linear::new(s3 * 3 * 3, fc, rng)));
    layers.push(LayerNode::ReLU(ReLU::new()));
    layers.push(LayerNode::Linear(Linear::new(fc, 62, rng)));
    Sequential::new(layers)
}

/// A basic residual block: conv–BN–ReLU–conv–BN with identity (or
/// projection) shortcut, joined by add + ReLU.
fn basic_block(in_c: usize, out_c: usize, stride: usize, rng: &mut StdRng) -> LayerNode {
    let body = vec![
        LayerNode::Conv2d(Conv2d::new(in_c, out_c, 3, stride, 1, rng)),
        LayerNode::BatchNorm2d(BatchNorm2d::new(out_c)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::Conv2d(Conv2d::new(out_c, out_c, 3, 1, 1, rng)),
        LayerNode::BatchNorm2d(BatchNorm2d::new(out_c)),
    ];
    let shortcut = if stride != 1 || in_c != out_c {
        vec![
            LayerNode::Conv2d(Conv2d::new(in_c, out_c, 1, stride, 0, rng)),
            LayerNode::BatchNorm2d(BatchNorm2d::new(out_c)),
        ]
    } else {
        vec![]
    };
    LayerNode::Residual(ResidualBlock::new(body, shortcut))
}

/// ResNet-style classifier for 64×64 Tiny-ImageNet-like inputs (200
/// classes): a stem convolution followed by three residual stages of two
/// blocks each, global average pooling, and a linear head.
pub fn resnet_tiny(width: f32, rng: &mut StdRng) -> Sequential {
    let w1 = scaled(32, width);
    let w2 = scaled(64, width);
    let w3 = scaled(128, width);
    Sequential::new(vec![
        LayerNode::Conv2d(Conv2d::new(3, w1, 3, 1, 1, rng)),
        LayerNode::BatchNorm2d(BatchNorm2d::new(w1)),
        LayerNode::ReLU(ReLU::new()),
        LayerNode::MaxPool2d(MaxPool2d::new(2)), // 64 → 32
        basic_block(w1, w1, 1, rng),
        basic_block(w1, w1, 1, rng),
        basic_block(w1, w2, 2, rng), // 32 → 16
        basic_block(w2, w2, 1, rng),
        basic_block(w2, w3, 2, rng), // 16 → 8
        basic_block(w3, w3, 1, rng),
        LayerNode::AvgPool2d(AvgPool2d::new(8)), // 8 → 1
        LayerNode::Flatten(Flatten::new()),
        LayerNode::Linear(Linear::new(w3, 200, rng)),
    ])
}

/// The §VI language model: two stacked LSTM layers over a token
/// embedding, as trained on Penn TreeBank in the paper.
pub fn lstm_ptb(vocab: usize, width: f32, rng: &mut StdRng) -> LstmLm {
    let embed = scaled(64, width);
    let hidden = scaled(128, width);
    LstmLm::new(vocab, embed, hidden, 2, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::{seeded_rng, Tensor};

    #[test]
    fn cnn_forward_shape() {
        let mut rng = seeded_rng(120);
        let mut m = cnn_mnist(0.25, &mut rng);
        let y = m.forward(&Tensor::randn(&[2, 1, 28, 28], &mut rng), false);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn alexnet_forward_shape() {
        let mut rng = seeded_rng(121);
        let mut m = alexnet_cifar(0.125, &mut rng);
        let y = m.forward(&Tensor::randn(&[2, 3, 32, 32], &mut rng), false);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn vgg_forward_shape() {
        let mut rng = seeded_rng(122);
        let mut m = vgg_emnist(0.125, &mut rng);
        let y = m.forward(&Tensor::randn(&[1, 1, 28, 28], &mut rng), false);
        assert_eq!(y.dims(), &[1, 62]);
    }

    #[test]
    fn resnet_forward_shape() {
        let mut rng = seeded_rng(123);
        let mut m = resnet_tiny(0.125, &mut rng);
        let y = m.forward(&Tensor::randn(&[1, 3, 64, 64], &mut rng), false);
        assert_eq!(y.dims(), &[1, 200]);
    }

    #[test]
    fn lstm_forward_shape() {
        let mut rng = seeded_rng(124);
        let mut m = lstm_ptb(30, 0.25, &mut rng);
        let logits = m.forward(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(logits.dims(), &[6, 30]);
    }

    #[test]
    fn width_scales_parameter_count_monotonically() {
        let mut rng = seeded_rng(125);
        let mut small = cnn_mnist(0.25, &mut rng);
        let mut big = cnn_mnist(0.5, &mut rng);
        assert!(small.num_params() < big.num_params());
    }

    #[test]
    fn training_mode_forward_works_for_all_models() {
        let mut rng = seeded_rng(126);
        let mut models_inputs: Vec<(Sequential, Tensor)> = vec![
            (cnn_mnist(0.1, &mut rng), Tensor::randn(&[1, 1, 28, 28], &mut rng)),
            (alexnet_cifar(0.05, &mut rng), Tensor::randn(&[1, 3, 32, 32], &mut rng)),
            (vgg_emnist(0.05, &mut rng), Tensor::randn(&[1, 1, 28, 28], &mut rng)),
            (resnet_tiny(0.05, &mut rng), Tensor::randn(&[1, 3, 64, 64], &mut rng)),
        ];
        for (m, x) in &mut models_inputs {
            let y = m.forward(x, true);
            assert!(y.all_finite());
            let gx = m.backward(&Tensor::ones(y.dims()));
            assert_eq!(gx.dims(), x.dims());
        }
    }
}
