//! # fedmp-nn
//!
//! A neural-network layer library with **hand-written backward passes**,
//! built on [`fedmp_tensor`]. It provides everything the FedMP paper's
//! model zoo needs: convolutions, batch normalisation, pooling, fully
//! connected layers, dropout, residual blocks, and a stacked-LSTM language
//! model for the RNN extension (paper §VI).
//!
//! The central design choice is that models are **closed enum trees**
//! ([`LayerNode`]) rather than boxed trait objects: the structured-pruning
//! code in `fedmp-pruning` must inspect and rebuild layer shapes
//! (filters, channels, BN parameters, FC neurons), and pattern-matching on
//! an enum makes that transformation explicit and exhaustively checked.
//!
//! ```
//! use fedmp_nn::{zoo, Sequential};
//! use fedmp_tensor::{cross_entropy_loss, seeded_rng, Tensor};
//!
//! let mut rng = seeded_rng(0);
//! let mut model: Sequential = zoo::cnn_mnist(0.25, &mut rng);
//! let x = Tensor::randn(&[2, 1, 28, 28], &mut rng);
//! let logits = model.forward(&x, true);
//! assert_eq!(logits.dims(), &[2, 10]);
//! let out = cross_entropy_loss(&logits, &[3, 7]);
//! model.backward(&out.grad_logits);
//! ```

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
mod activation;
mod adam;
mod batchnorm;
mod container;
mod conv_layer;
mod flatten;
mod flops;
mod linear;
mod lstm;
mod optim;
mod param;
mod pool_layer;
pub mod zoo;

pub use activation::{Dropout, ReLU};
pub use adam::{Adam, LrSchedule};
pub use batchnorm::BatchNorm2d;
pub use container::{LayerNode, ResidualBlock, Sequential};
pub use conv_layer::Conv2d;
pub use flatten::Flatten;
pub use flops::{lstm_cost_per_token, model_cost, CostReport, LayerCost};
pub use linear::Linear;
pub use lstm::{Embedding, Lstm, LstmLm};
pub use optim::{add_proximal_grad, clip_grad_norm, grad_norm, snapshot_params, ParamVisitor, Sgd};
pub use param::{
    state_add, state_numel, state_scale, state_sq_distance, state_sub, Param, StateEntry,
};
pub use pool_layer::{AvgPool2d, MaxPool2d};
