//! Stacked-LSTM language model for the paper's RNN extension (§VI,
//! Table IV): embedding → 2 × LSTM → linear decoder, trained with full
//! back-propagation through time.
//!
//! The LSTM's weights are laid out so that **Intrinsic Sparse Structure
//! (ISS) pruning** — removing hidden unit `k` simultaneously from all four
//! gates, the recurrent connections and the downstream consumers — is a
//! pure row/column selection implemented in `fedmp-pruning`.

use crate::param::{Param, StateEntry};
use fedmp_tensor::Tensor;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Token-embedding table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    /// Table, `[vocab, dim]`.
    pub weight: Param,
    #[serde(skip)]
    cached_tokens: Vec<usize>,
}

impl Embedding {
    /// A new table with `N(0, 0.1)` entries.
    pub fn new(vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding {
            weight: Param::new(Tensor::randn(&[vocab, dim], rng).scale(0.1)),
            cached_tokens: Vec::new(),
        }
    }

    /// Builds from a saved table.
    pub fn from_parts(weight: Tensor) -> Self {
        assert_eq!(weight.shape().rank(), 2, "embedding weight must be rank-2");
        Embedding { weight: Param::new(weight), cached_tokens: Vec::new() }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Looks up a batch of tokens: returns `[batch, dim]`.
    pub fn forward(&mut self, tokens: &[usize]) -> Tensor {
        let dim = self.dim();
        let mut out = Tensor::zeros(&[tokens.len(), dim]);
        for (r, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.vocab(), "token {tok} out of vocab {}", self.vocab());
            out.row_mut(r).copy_from_slice(self.weight.value.row(tok));
        }
        self.cached_tokens.extend_from_slice(tokens);
        out
    }

    /// Scatters gradients back into the table rows. Must be called once
    /// per `forward`, in reverse order.
    pub fn backward(&mut self, grad_out: &Tensor) {
        let batch = grad_out.dims()[0];
        assert!(self.cached_tokens.len() >= batch, "embedding backward without forward");
        let start = self.cached_tokens.len() - batch;
        for (r, &tok) in self.cached_tokens[start..].iter().enumerate() {
            let dst_base = tok * self.dim();
            let grad = self.weight.grad.data_mut();
            for (k, &g) in grad_out.row(r).iter().enumerate() {
                grad[dst_base + k] += g;
            }
        }
        self.cached_tokens.truncate(start);
    }

    /// Clears cached lookups (call between sequences).
    pub fn reset(&mut self) {
        self.cached_tokens.clear();
    }
}

#[derive(Debug, Clone)]
struct LstmStepCache {
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    i: Tensor,
    f: Tensor,
    g: Tensor,
    o: Tensor,
    tanh_c: Tensor,
}

/// One LSTM layer (gate order `i, f, g, o` along the 4h axis).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    /// Input weights, `[4h, in]`.
    pub w_x: Param,
    /// Recurrent weights, `[4h, h]`.
    pub w_h: Param,
    /// Gate biases, `[4h]` (forget-gate slice initialised to 1).
    pub bias: Param,
    #[serde(skip)]
    steps: Vec<LstmStepCache>,
}

impl Lstm {
    /// A new layer with `hidden` units over `input` features.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut bias = Tensor::zeros(&[4 * hidden]);
        // Forget-gate bias = 1: standard trick to avoid early vanishing.
        for v in &mut bias.data_mut()[hidden..2 * hidden] {
            *v = 1.0;
        }
        Lstm {
            w_x: Param::new(Tensor::kaiming(&[4 * hidden, input], input, rng)),
            w_h: Param::new(Tensor::kaiming(&[4 * hidden, hidden], hidden, rng)),
            bias: Param::new(bias),
            steps: Vec::new(),
        }
    }

    /// Builds from saved tensors (ISS-pruning reconstruction).
    pub fn from_parts(w_x: Tensor, w_h: Tensor, bias: Tensor) -> Self {
        let h4 = w_x.dims()[0];
        assert_eq!(h4 % 4, 0, "lstm: first dim must be 4*hidden");
        assert_eq!(w_h.dims(), &[h4, h4 / 4], "lstm: w_h shape");
        assert_eq!(bias.numel(), h4, "lstm: bias length");
        Lstm {
            w_x: Param::new(w_x),
            w_h: Param::new(w_h),
            bias: Param::new(bias),
            steps: Vec::new(),
        }
    }

    /// Hidden-unit count.
    pub fn hidden(&self) -> usize {
        self.w_x.value.dims()[0] / 4
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.w_x.value.dims()[1]
    }

    /// Clears the BPTT cache (call before each sequence).
    pub fn reset(&mut self) {
        self.steps.clear();
    }

    /// One time step. `x` is `[batch, in]`; `h_prev`/`c_prev` are
    /// `[batch, h]`. Returns `(h, c)`.
    pub fn step(&mut self, x: &Tensor, h_prev: &Tensor, c_prev: &Tensor) -> (Tensor, Tensor) {
        let h = self.hidden();
        let batch = x.dims()[0];
        // z = x Wxᵀ + h_prev Whᵀ + b : [batch, 4h]
        let mut z = x.matmul_nt(&self.w_x.value);
        z.add_assign(&h_prev.matmul_nt(&self.w_h.value));
        let bias = self.bias.value.data();
        for r in 0..batch {
            for (v, &b) in z.row_mut(r).iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }

        let mut i_g = Tensor::zeros(&[batch, h]);
        let mut f_g = Tensor::zeros(&[batch, h]);
        let mut g_g = Tensor::zeros(&[batch, h]);
        let mut o_g = Tensor::zeros(&[batch, h]);
        for r in 0..batch {
            let zr = z.row(r);
            for k in 0..h {
                i_g.row_mut(r)[k] = sigmoid(zr[k]);
                f_g.row_mut(r)[k] = sigmoid(zr[h + k]);
                g_g.row_mut(r)[k] = zr[2 * h + k].tanh();
                o_g.row_mut(r)[k] = sigmoid(zr[3 * h + k]);
            }
        }

        let c = f_g.mul(c_prev).add(&i_g.mul(&g_g));
        let tanh_c = c.map(f32::tanh);
        let h_out = o_g.mul(&tanh_c);

        self.steps.push(LstmStepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            i: i_g,
            f: f_g,
            g: g_g,
            o: o_g,
            tanh_c,
        });
        (h_out, c)
    }

    /// Full-sequence BPTT. `grad_hs[t]` is the gradient flowing into the
    /// hidden output of step `t`. Returns the per-step input gradients.
    /// Consumes (clears) the step cache.
    pub fn backward_seq(&mut self, grad_hs: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(grad_hs.len(), self.steps.len(), "lstm backward: step count mismatch");
        let h = self.hidden();
        let steps = std::mem::take(&mut self.steps);
        let batch = steps[0].x.dims()[0];
        let in_dim = self.input_size();

        let mut grad_xs = vec![Tensor::zeros(&[batch, in_dim]); steps.len()];
        let mut dh_next = Tensor::zeros(&[batch, h]);
        let mut dc_next = Tensor::zeros(&[batch, h]);

        for (t, cache) in steps.iter().enumerate().rev() {
            let dh = grad_hs[t].add(&dh_next);
            // dc = dh ⊙ o ⊙ (1 − tanh²c) + dc_next
            let one_minus_t2 = cache.tanh_c.map(|v| 1.0 - v * v);
            let dc = dh.mul(&cache.o).mul(&one_minus_t2).add(&dc_next);

            let d_o = dh.mul(&cache.tanh_c);
            let d_i = dc.mul(&cache.g);
            let d_f = dc.mul(&cache.c_prev);
            let d_g = dc.mul(&cache.i);

            // Pre-activation gradients.
            let d_i_pre = d_i.mul(&cache.i.map(|v| v * (1.0 - v)));
            let d_f_pre = d_f.mul(&cache.f.map(|v| v * (1.0 - v)));
            let d_g_pre = d_g.mul(&cache.g.map(|v| 1.0 - v * v));
            let d_o_pre = d_o.mul(&cache.o.map(|v| v * (1.0 - v)));

            // Pack into dz [batch, 4h] with gate order i,f,g,o.
            let mut dz = Tensor::zeros(&[batch, 4 * h]);
            for r in 0..batch {
                let dst = dz.row_mut(r);
                dst[..h].copy_from_slice(d_i_pre.row(r));
                dst[h..2 * h].copy_from_slice(d_f_pre.row(r));
                dst[2 * h..3 * h].copy_from_slice(d_g_pre.row(r));
                dst[3 * h..].copy_from_slice(d_o_pre.row(r));
            }

            self.w_x.grad.add_assign(&dz.matmul_tn(&cache.x));
            self.w_h.grad.add_assign(&dz.matmul_tn(&cache.h_prev));
            for r in 0..batch {
                for (gb, &v) in self.bias.grad.data_mut().iter_mut().zip(dz.row(r).iter()) {
                    *gb += v;
                }
            }

            grad_xs[t] = dz.matmul(&self.w_x.value);
            dh_next = dz.matmul(&self.w_h.value);
            dc_next = dc.mul(&cache.f);
        }
        grad_xs
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The paper §VI language model: embedding → stacked LSTMs → decoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmLm {
    /// Token embedding.
    pub embedding: Embedding,
    /// Stacked LSTM layers (the paper uses two).
    pub lstms: Vec<Lstm>,
    /// Decoder to vocabulary logits.
    pub decoder: crate::linear::Linear,
}

impl LstmLm {
    /// Builds `vocab → embed_dim → hidden×layers → vocab`.
    pub fn new(
        vocab: usize,
        embed_dim: usize,
        hidden: usize,
        layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(layers >= 1, "lstm lm needs at least one layer");
        let mut lstms = Vec::with_capacity(layers);
        lstms.push(Lstm::new(embed_dim, hidden, rng));
        for _ in 1..layers {
            lstms.push(Lstm::new(hidden, hidden, rng));
        }
        LstmLm {
            embedding: Embedding::new(vocab, embed_dim, rng),
            lstms,
            decoder: crate::linear::Linear::new(hidden, vocab, rng),
        }
    }

    /// Runs a `[batch, seq]` token grid through the model, returning the
    /// logits of every position stacked as `[batch*seq, vocab]` in
    /// time-major order (all positions of step 0 first).
    ///
    /// Caches everything needed for [`LstmLm::backward`].
    pub fn forward(&mut self, tokens: &[Vec<usize>]) -> Tensor {
        let batch = tokens.len();
        assert!(batch > 0, "empty batch");
        let seq = tokens[0].len();
        assert!(tokens.iter().all(|t| t.len() == seq), "ragged sequences");

        self.embedding.reset();
        for l in &mut self.lstms {
            l.reset();
        }

        let h = self.lstms.last().expect("non-empty lstm stack").hidden();
        let mut hs: Vec<Tensor> = Vec::with_capacity(seq);
        let mut states: Vec<(Tensor, Tensor)> = self
            .lstms
            .iter()
            .map(|l| (Tensor::zeros(&[batch, l.hidden()]), Tensor::zeros(&[batch, l.hidden()])))
            .collect();

        for t in 0..seq {
            let step_tokens: Vec<usize> = tokens.iter().map(|row| row[t]).collect();
            let mut x = self.embedding.forward(&step_tokens);
            for (li, l) in self.lstms.iter_mut().enumerate() {
                let (h_new, c_new) = l.step(&x, &states[li].0, &states[li].1);
                states[li] = (h_new.clone(), c_new);
                x = h_new;
            }
            hs.push(x);
        }

        // Decode every step.
        let mut all = Tensor::zeros(&[batch * seq, h]);
        for (t, ht) in hs.iter().enumerate() {
            for r in 0..batch {
                all.row_mut(t * batch + r).copy_from_slice(ht.row(r));
            }
        }
        self.decoder.forward(&all, true)
    }

    /// Backward from the logits gradient produced by
    /// [`fedmp_tensor::cross_entropy_loss`] on the stacked logits.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        let grad_h_all = self.decoder.backward(grad_logits); // [batch*seq, h]
        let n_layers = self.lstms.len();
        let seq = self.lstms[n_layers - 1].steps.len();
        let batch = grad_h_all.dims()[0] / seq;
        let h = self.lstms[n_layers - 1].hidden();

        // Unstack into per-step gradients for the top LSTM.
        let mut grad_hs: Vec<Tensor> = Vec::with_capacity(seq);
        for t in 0..seq {
            let mut g = Tensor::zeros(&[batch, h]);
            for r in 0..batch {
                g.row_mut(r).copy_from_slice(grad_h_all.row(t * batch + r));
            }
            grad_hs.push(g);
        }

        // Backward through the stack, top layer first.
        for li in (0..n_layers).rev() {
            grad_hs = self.lstms[li].backward_seq(&grad_hs);
        }
        // grad_hs now holds embedding gradients per step; scatter them
        // (reverse order — the embedding cache is a stack).
        for g in grad_hs.iter().rev() {
            self.embedding.backward(g);
        }
    }

    /// Visits every trainable parameter.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.embedding.weight);
        for l in &mut self.lstms {
            f(&mut l.w_x);
            f(&mut l.w_h);
            f(&mut l.bias);
        }
        f(&mut self.decoder.weight);
        f(&mut self.decoder.bias);
    }

    /// Zeroes every gradient.
    pub fn zero_grad(&mut self) {
        self.for_each_param_mut(&mut |p| p.zero_grad());
    }

    /// Ordered named snapshot (FL interchange format).
    pub fn state(&self) -> Vec<StateEntry> {
        let mut out =
            vec![StateEntry::trainable("embedding.weight", self.embedding.weight.value.clone())];
        for (i, l) in self.lstms.iter().enumerate() {
            out.push(StateEntry::trainable(format!("lstm.{i}.w_x"), l.w_x.value.clone()));
            out.push(StateEntry::trainable(format!("lstm.{i}.w_h"), l.w_h.value.clone()));
            out.push(StateEntry::trainable(format!("lstm.{i}.bias"), l.bias.value.clone()));
        }
        out.push(StateEntry::trainable("decoder.weight", self.decoder.weight.value.clone()));
        out.push(StateEntry::trainable("decoder.bias", self.decoder.bias.value.clone()));
        out
    }

    /// Loads a snapshot from [`LstmLm::state`] on an identical
    /// architecture.
    pub fn load_state(&mut self, entries: &[StateEntry]) {
        let expected = 1 + 3 * self.lstms.len() + 2;
        assert_eq!(entries.len(), expected, "lstm lm load_state: entry count");
        let mut it = entries.iter();
        let mut next = |name: &str| {
            let e = it.next().expect("exhausted entries");
            assert_eq!(e.name, name, "lstm lm load_state: expected {name}");
            e.tensor.clone()
        };
        self.embedding.weight.value = next("embedding.weight");
        for i in 0..self.lstms.len() {
            self.lstms[i].w_x.value = next(&format!("lstm.{i}.w_x"));
            self.lstms[i].w_h.value = next(&format!("lstm.{i}.w_h"));
            self.lstms[i].bias.value = next(&format!("lstm.{i}.bias"));
        }
        self.decoder.weight.value = next("decoder.weight");
        self.decoder.bias.value = next("decoder.bias");
    }

    /// Total trainable parameter count.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param_mut(&mut |p| n += p.numel());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::{cross_entropy_loss, seeded_rng};

    #[test]
    fn embedding_lookup_and_scatter() {
        let mut rng = seeded_rng(90);
        let mut e = Embedding::new(5, 3, &mut rng);
        let x = e.forward(&[2, 4]);
        assert_eq!(x.dims(), &[2, 3]);
        assert_eq!(x.row(0), e.weight.value.row(2));
        let g = Tensor::ones(&[2, 3]);
        e.backward(&g);
        assert_eq!(e.weight.grad.row(2), &[1.0, 1.0, 1.0]);
        assert_eq!(e.weight.grad.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn lstm_step_shapes_and_gates() {
        let mut rng = seeded_rng(91);
        let mut l = Lstm::new(6, 4, &mut rng);
        let x = Tensor::randn(&[3, 6], &mut rng);
        let h0 = Tensor::zeros(&[3, 4]);
        let c0 = Tensor::zeros(&[3, 4]);
        let (h1, c1) = l.step(&x, &h0, &c0);
        assert_eq!(h1.dims(), &[3, 4]);
        assert_eq!(c1.dims(), &[3, 4]);
        // h = o * tanh(c) bounds |h| < 1.
        assert!(h1.data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn lstm_bptt_gradient_check() {
        let mut rng = seeded_rng(92);
        let mut l = Lstm::new(3, 2, &mut rng);
        let xs: Vec<Tensor> = (0..3).map(|_| Tensor::randn(&[2, 3], &mut rng)).collect();

        let run = |l: &Lstm, xs: &[Tensor]| -> f32 {
            let mut l = l.clone();
            l.reset();
            let mut h = Tensor::zeros(&[2, 2]);
            let mut c = Tensor::zeros(&[2, 2]);
            let mut total = 0.0;
            for x in xs {
                let (h2, c2) = l.step(x, &h, &c);
                total += h2.sum();
                h = h2;
                c = c2;
            }
            total
        };

        // Analytic gradients: dLoss/dh_t = 1 for every step output.
        l.reset();
        let mut h = Tensor::zeros(&[2, 2]);
        let mut c = Tensor::zeros(&[2, 2]);
        for x in &xs {
            let (h2, c2) = l.step(x, &h, &c);
            h = h2;
            c = c2;
        }
        let grad_hs = vec![Tensor::ones(&[2, 2]); 3];
        let grad_xs = l.backward_seq(&grad_hs);

        let eps = 1e-2f32;
        // Check input gradient at a few positions of step 1.
        for idx in [0usize, 3, 5] {
            let mut xp = xs.clone();
            xp[1].data_mut()[idx] += eps;
            let mut xm = xs.clone();
            xm[1].data_mut()[idx] -= eps;
            let num = (run(&l, &xp) - run(&l, &xm)) / (2.0 * eps);
            let ana = grad_xs[1].data()[idx];
            assert!((num - ana).abs() < 2e-2, "x grad {idx}: {num} vs {ana}");
        }
        // Check weight gradients at a few positions.
        for idx in [0usize, 7, 13] {
            let mut lp = l.clone();
            lp.w_x.value.data_mut()[idx] += eps;
            let mut lm = l.clone();
            lm.w_x.value.data_mut()[idx] -= eps;
            let num = (run(&lp, &xs) - run(&lm, &xs)) / (2.0 * eps);
            let ana = l.w_x.grad.data()[idx];
            assert!((num - ana).abs() < 2e-2, "w_x grad {idx}: {num} vs {ana}");
        }
    }

    #[test]
    fn lm_forward_backward_and_training_reduces_loss() {
        let mut rng = seeded_rng(93);
        let mut lm = LstmLm::new(12, 8, 10, 2, &mut rng);
        // A trivially learnable sequence: token t+1 follows token t.
        let tokens: Vec<Vec<usize>> =
            (0..4).map(|b| (0..6).map(|t| (b + t) % 12).collect()).collect();
        let targets: Vec<usize> = {
            // time-major to match forward's stacking
            let mut v = Vec::new();
            for t in 0..6 {
                for row in &tokens {
                    v.push((row[t] + 1) % 12);
                }
            }
            v
        };

        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for step in 0..60 {
            lm.zero_grad();
            let logits = lm.forward(&tokens);
            let out = cross_entropy_loss(&logits, &targets);
            lm.backward(&out.grad_logits);
            lm.for_each_param_mut(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.5, &g);
            });
            if step == 0 {
                first_loss = out.loss;
            }
            last_loss = out.loss;
        }
        assert!(last_loss < first_loss * 0.5, "loss {first_loss} -> {last_loss}");
    }

    #[test]
    fn lm_state_roundtrip() {
        let mut rng = seeded_rng(94);
        let lm = LstmLm::new(10, 4, 6, 2, &mut rng);
        let state = lm.state();
        assert_eq!(state.len(), 1 + 6 + 2);
        let mut lm2 = LstmLm::new(10, 4, 6, 2, &mut rng);
        lm2.load_state(&state);
        assert_eq!(lm2.state()[3].tensor, state[3].tensor);
    }
}
