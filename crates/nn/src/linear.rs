//! Fully connected (dense) layer.

use crate::param::Param;
use fedmp_tensor::{matmul_nt_pruned, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A fully connected layer: `y = x Wᵀ + b`.
///
/// * weight — `[out_features, in_features]` (each **row** is one output
///   neuron, which is the unit structured pruning removes)
/// * bias — `[out_features]`
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight parameter, `[out_features, in_features]`.
    pub weight: Param,
    /// Bias parameter, `[out_features]`.
    pub bias: Param,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Linear {
    /// A Kaiming-initialised layer of the given dimensions.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Linear {
            weight: Param::new(Tensor::kaiming(&[out_features, in_features], in_features, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Builds a layer directly from weight/bias tensors (used by the
    /// pruning code when materialising sub-models).
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().rank(), 2, "linear weight must be rank-2");
        assert_eq!(weight.dims()[0], bias.numel(), "linear: bias length mismatch");
        Linear { weight: Param::new(weight), bias: Param::new(bias), cached_input: None }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Output feature (neuron) count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Forward pass: `[batch, in] -> [batch, out]`.
    pub fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "linear input must be [batch, features]");
        assert_eq!(input.dims()[1], self.in_features(), "linear: feature count mismatch");
        self.cached_input = Some(input.clone());
        let mut out = input.matmul_nt(&self.weight.value);
        let (batch, of) = (out.dims()[0], out.dims()[1]);
        let bias = self.bias.value.data();
        let data = out.data_mut();
        for r in 0..batch {
            for (o, &b) in data[r * of..(r + 1) * of].iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Pruning-aware **inference** forward: computes only the
    /// `kept_out` neurons over the `kept_in` features of this layer's
    /// full-size parameters, bit-identical to extracting the sub-model
    /// and running its dense [`Self::forward`] (same GEMM on the same
    /// gathered bytes, same bias-add loop). The input is never cached,
    /// and may carry either the full feature count or exactly
    /// `kept_in.len()` features — see `matmul_nt_pruned`.
    pub fn forward_pruned(&self, input: &Tensor, kept_out: &[usize], kept_in: &[usize]) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "linear input must be [batch, features]");
        let mut out = matmul_nt_pruned(input, &self.weight.value, kept_out, kept_in);
        let (batch, of) = (out.dims()[0], out.dims()[1]);
        let bias = self.bias.value.data();
        let data = out.data_mut();
        for r in 0..batch {
            for (o, &b) in
                data[r * of..(r + 1) * of].iter_mut().zip(kept_out.iter().map(|&i| &bias[i]))
            {
                *o += b;
            }
        }
        out
    }

    /// Backward pass; accumulates weight/bias gradients and returns the
    /// input gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("linear backward before forward");
        // dW = grad_outᵀ @ input  → [out, in]
        self.weight.grad.add_assign(&grad_out.matmul_tn(input));
        // db = column-sum of grad_out
        let (batch, of) = (grad_out.dims()[0], grad_out.dims()[1]);
        let gb = self.bias.grad.data_mut();
        let go = grad_out.data();
        for r in 0..batch {
            for (g, &v) in gb.iter_mut().zip(go[r * of..(r + 1) * of].iter()) {
                *g += v;
            }
        }
        // dX = grad_out @ W  → [batch, in]
        grad_out.matmul(&self.weight.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::{cross_entropy_loss, seeded_rng};

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = seeded_rng(40);
        let mut l = Linear::new(4, 3, &mut rng);
        l.bias.value.fill(1.0);
        l.weight.value.fill_zero();
        let x = Tensor::randn(&[2, 4], &mut rng);
        let y = l.forward(&x, true);
        assert_eq!(y.dims(), &[2, 3]);
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = seeded_rng(41);
        let mut l = Linear::new(5, 3, &mut rng);
        let x = Tensor::randn(&[4, 5], &mut rng);
        let labels = vec![0usize, 2, 1, 0];

        let logits = l.forward(&x, true);
        let out = cross_entropy_loss(&logits, &labels);
        let gx = l.backward(&out.grad_logits);

        let eps = 1e-2f32;
        let loss_for = |l: &Linear, x: &Tensor| {
            let mut l2 = l.clone();
            let logits = l2.forward(x, true);
            cross_entropy_loss(&logits, &labels).loss
        };

        for idx in [0usize, 4, 9, 14] {
            let mut wp = l.clone();
            wp.weight.value.data_mut()[idx] += eps;
            let mut wm = l.clone();
            wm.weight.value.data_mut()[idx] -= eps;
            let num = (loss_for(&wp, &x) - loss_for(&wm, &x)) / (2.0 * eps);
            assert!((num - l.weight.grad.data()[idx]).abs() < 1e-2, "w grad {idx}");
        }
        for idx in [0usize, 7, 13, 19] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss_for(&l, &xp) - loss_for(&l, &xm)) / (2.0 * eps);
            assert!((num - gx.data()[idx]).abs() < 1e-2, "x grad {idx}");
        }
    }

    #[test]
    fn from_parts_checks_shapes() {
        let w = Tensor::zeros(&[3, 4]);
        let b = Tensor::zeros(&[3]);
        let l = Linear::from_parts(w, b);
        assert_eq!(l.in_features(), 4);
        assert_eq!(l.out_features(), 3);
    }

    #[test]
    #[should_panic(expected = "bias length mismatch")]
    fn from_parts_bad_bias_panics() {
        let _ = Linear::from_parts(Tensor::zeros(&[3, 4]), Tensor::zeros(&[4]));
    }
}
