//! Optimizers. Plain SGD with momentum and weight decay covers every
//! training loop in the paper; the FedProx baseline adds a proximal term
//! via [`add_proximal_grad`].

use crate::container::Sequential;
use crate::lstm::LstmLm;
use crate::param::Param;
use fedmp_tensor::parallel::sum_f32;
use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Anything that exposes its trainable parameters in a deterministic
/// order. The order must match the trainable entries of the model's
/// `state()` snapshot — the FL engine relies on this to align anchors.
pub trait ParamVisitor {
    /// Visits every trainable parameter exactly once, in a fixed order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));
}

impl ParamVisitor for Sequential {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.for_each_param_mut(f);
    }
}

impl ParamVisitor for LstmLm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.for_each_param_mut(f);
    }
}

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// Velocity buffers are lazily allocated per parameter (keyed by visit
/// order), so one optimizer instance must stay paired with one model of
/// fixed architecture. FedMP re-creates the optimizer whenever a worker
/// receives a sub-model with a new structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate γ.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay (0 disables).
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum and weight decay.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd { lr, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Applies one update step to every parameter of `model`.
    pub fn step(&mut self, model: &mut impl ParamVisitor) {
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p: &mut Param| {
            if momentum == 0.0 {
                if wd > 0.0 {
                    let decay = p.value.scale(wd);
                    p.grad.add_assign(&decay);
                }
                let g = p.grad.clone();
                p.value.axpy(-lr, &g);
            } else {
                if velocity.len() == idx {
                    velocity.push(Tensor::zeros(p.value.dims()));
                }
                let v = &mut velocity[idx];
                assert_eq!(
                    v.dims(),
                    p.value.dims(),
                    "optimizer velocity shape drift: re-create Sgd after changing model structure"
                );
                if wd > 0.0 {
                    let decay = p.value.scale(wd);
                    p.grad.add_assign(&decay);
                }
                v.scale_in_place(momentum);
                v.add_assign(&p.grad);
                let vv = v.clone();
                p.value.axpy(-lr, &vv);
            }
            idx += 1;
        });
    }
}

/// Adds the FedProx proximal gradient `μ (x − x_anchor)` to every
/// parameter gradient. `anchor` must hold the trainable parameter values
/// in visit order (e.g. captured via [`snapshot_params`]).
pub fn add_proximal_grad(model: &mut impl ParamVisitor, anchor: &[Tensor], mu: f32) {
    let mut idx = 0usize;
    model.visit_params(&mut |p: &mut Param| {
        let a = &anchor[idx];
        assert_eq!(a.dims(), p.value.dims(), "proximal anchor shape mismatch at {idx}");
        let mut diff = p.value.clone();
        diff.sub_assign(a);
        p.grad.axpy(mu, &diff);
        idx += 1;
    });
    let _ = idx;
}

/// Captures the current trainable parameter values in visit order.
pub fn snapshot_params(model: &mut impl ParamVisitor) -> Vec<Tensor> {
    let mut out = Vec::new();
    model.visit_params(&mut |p: &mut Param| out.push(p.value.clone()));
    out
}

/// Global L2 norm of all gradients (for divergence monitoring and
/// gradient clipping).
pub fn grad_norm(model: &mut impl ParamVisitor) -> f32 {
    let mut sq = 0.0f32;
    model.visit_params(&mut |p: &mut Param| {
        sq += sum_f32(p.grad.data().iter().map(|g| g * g));
    });
    sq.sqrt()
}

/// Scales all gradients so their global norm is at most `max_norm`.
pub fn clip_grad_norm(model: &mut impl ParamVisitor, max_norm: f32) {
    let norm = grad_norm(model);
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        model.visit_params(&mut |p: &mut Param| p.grad.scale_in_place(scale));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{LayerNode, Sequential};
    use crate::linear::Linear;
    use fedmp_tensor::{cross_entropy_loss, seeded_rng};

    fn model(rng: &mut rand::rngs::StdRng) -> Sequential {
        Sequential::new(vec![LayerNode::Linear(Linear::new(4, 3, rng))])
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut rng = seeded_rng(100);
        let mut m = model(&mut rng);
        let mut opt = Sgd::new(0.5);
        let x = Tensor::randn(&[8, 4], &mut rng);
        let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
        let mut losses = Vec::new();
        for _ in 0..30 {
            m.zero_grad();
            let logits = m.forward(&x, true);
            let out = cross_entropy_loss(&logits, &labels);
            losses.push(out.loss);
            m.backward(&out.grad_logits);
            opt.step(&mut m);
        }
        assert!(losses[29] < losses[0] * 0.5, "{} -> {}", losses[0], losses[29]);
    }

    #[test]
    fn momentum_accelerates_on_quadratic() {
        // Minimise ‖Wx − 0‖² — any SGD works, momentum should be no slower.
        let rng = seeded_rng(101);
        let run = |momentum: f32| {
            let mut m = model(&mut seeded_rng(101));
            let mut opt = Sgd::with_momentum(0.1, momentum, 0.0);
            let x = Tensor::randn(&[4, 4], &mut rng.clone());
            let labels = vec![0usize, 1, 2, 0];
            let mut last = 0.0;
            for _ in 0..40 {
                m.zero_grad();
                let logits = m.forward(&x, true);
                let out = cross_entropy_loss(&logits, &labels);
                last = out.loss;
                m.backward(&out.grad_logits);
                opt.step(&mut m);
            }
            last
        };
        assert!(run(0.9) <= run(0.0) + 0.05);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = seeded_rng(102);
        let mut m = model(&mut rng);
        let initial: f32 = snapshot_params(&mut m).iter().map(|t| t.l2_norm()).sum();
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        for _ in 0..20 {
            m.zero_grad(); // zero gradients: only decay acts
            opt.step(&mut m);
        }
        let after: f32 = snapshot_params(&mut m).iter().map(|t| t.l2_norm()).sum();
        assert!(after < initial * 0.5, "{initial} -> {after}");
    }

    #[test]
    fn proximal_grad_points_to_anchor() {
        let mut rng = seeded_rng(103);
        let mut m = model(&mut rng);
        let anchor = snapshot_params(&mut m);
        // Move weights away from anchor.
        m.visit_params(&mut |p| p.value.scale_in_place(2.0));
        m.zero_grad();
        add_proximal_grad(&mut m, &anchor, 1.0);
        // grad = x − anchor = anchor (since x = 2·anchor), i.e. non-zero and
        // an SGD step with lr=1 returns exactly to the anchor.
        let mut opt = Sgd::new(1.0);
        opt.step(&mut m);
        let now = snapshot_params(&mut m);
        for (a, b) in anchor.iter().zip(now.iter()) {
            assert!(a.sq_distance(b) < 1e-8);
        }
    }

    #[test]
    fn grad_clipping_bounds_norm() {
        let mut rng = seeded_rng(104);
        let mut m = model(&mut rng);
        m.visit_params(&mut |p| p.grad.fill(10.0));
        assert!(grad_norm(&mut m) > 5.0);
        clip_grad_norm(&mut m, 1.0);
        assert!((grad_norm(&mut m) - 1.0).abs() < 1e-4);
    }
}
