//! Pooling layers wrapping the tensor-level kernels.

use fedmp_tensor::{
    avg_pool2d_backward, avg_pool2d_forward, max_pool2d_backward, max_pool2d_forward, Pool2dSpec,
    Tensor,
};
use serde::{Deserialize, Serialize};

/// Max pooling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Window geometry.
    pub spec: Pool2dSpec,
    #[serde(skip)]
    argmax: Option<Vec<usize>>,
    #[serde(skip)]
    input_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// A square max-pool of size `k` with stride `k`.
    pub fn new(k: usize) -> Self {
        MaxPool2d { spec: Pool2dSpec::square(k), argmax: None, input_dims: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let (out, argmax) = max_pool2d_forward(input, &self.spec);
        self.argmax = Some(argmax);
        self.input_dims = Some(input.dims().to_vec());
        out
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("maxpool backward before forward");
        let dims = self.input_dims.as_ref().expect("maxpool backward before forward");
        max_pool2d_backward(grad_out, argmax, dims)
    }
}

/// Average pooling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvgPool2d {
    /// Window geometry.
    pub spec: Pool2dSpec,
    #[serde(skip)]
    input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// A square average-pool of size `k` with stride `k`.
    pub fn new(k: usize) -> Self {
        AvgPool2d { spec: Pool2dSpec::square(k), input_dims: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.input_dims = Some(input.dims().to_vec());
        avg_pool2d_forward(input, &self.spec)
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self.input_dims.as_ref().expect("avgpool backward before forward");
        avg_pool2d_backward(grad_out, dims, &self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn max_pool_roundtrip_shapes() {
        let mut rng = seeded_rng(70);
        let mut p = MaxPool2d::new(2);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[2, 3, 4, 4]);
        let gx = p.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        // Each window routed exactly one unit of gradient.
        assert_eq!(gx.sum(), y.numel() as f32);
    }

    #[test]
    fn avg_pool_roundtrip_shapes() {
        let mut rng = seeded_rng(71);
        let mut p = AvgPool2d::new(4);
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 2, 2, 2]);
        let gx = p.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        assert!((gx.sum() - y.numel() as f32).abs() < 1e-4);
    }
}
