//! Convolutional layer wrapping the tensor-level conv kernels.

use crate::param::Param;
use fedmp_tensor::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_forward, conv2d_forward_pruned,
    Conv2dSpec, Tensor,
};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A 2-D convolution layer.
///
/// * weight — `[out_channels, in_channels, kh, kw]`; each **filter**
///   (leading-axis slice) is the unit structured pruning removes.
/// * bias — `[out_channels]`
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Filter bank, `[oc, ic, kh, kw]`.
    pub weight: Param,
    /// Per-filter bias, `[oc]`.
    pub bias: Param,
    /// Kernel/stride/padding geometry.
    pub spec: Conv2dSpec,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// A Kaiming-initialised convolution.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        let spec = Conv2dSpec { kh: kernel, kw: kernel, stride, padding };
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(Tensor::kaiming(
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            spec,
            cached_input: None,
        }
    }

    /// Builds a convolution directly from tensors (pruning reconstruction).
    pub fn from_parts(weight: Tensor, bias: Tensor, spec: Conv2dSpec) -> Self {
        assert_eq!(weight.shape().rank(), 4, "conv weight must be rank-4");
        assert_eq!(weight.dims()[0], bias.numel(), "conv: bias length mismatch");
        assert_eq!(weight.dims()[2], spec.kh);
        assert_eq!(weight.dims()[3], spec.kw);
        Conv2d { weight: Param::new(weight), bias: Param::new(bias), spec, cached_input: None }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Number of output channels (filters).
    pub fn out_channels(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Forward pass: `[n, ic, h, w] -> [n, oc, oh, ow]`.
    pub fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.cached_input = Some(input.clone());
        conv2d_forward(input, &self.weight.value, &self.bias.value, &self.spec)
    }

    /// Backward pass; accumulates parameter gradients, returns input grad.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("conv backward before forward");
        let (gw, gb) =
            conv2d_backward_weight(grad_out, input, self.weight.value.dims(), &self.spec);
        self.weight.grad.add_assign(&gw);
        self.bias.grad.add_assign(&gb);
        conv2d_backward_input(grad_out, &self.weight.value, input.dims(), &self.spec)
    }

    /// Pruning-aware **inference** forward: computes only the
    /// `kept_out` filters over the `kept_in` channels of this layer's
    /// full-size parameters, bit-identical to extracting the sub-model
    /// and running its dense [`Self::forward`]. The input is never
    /// cached (no backward through this path), and `input` may carry
    /// either the full channel count or exactly `kept_in.len()`
    /// channels — see `conv2d_forward_pruned`.
    pub fn forward_pruned(&self, input: &Tensor, kept_out: &[usize], kept_in: &[usize]) -> Tensor {
        conv2d_forward_pruned(
            input,
            &self.weight.value,
            &self.bias.value,
            &self.spec,
            kept_out,
            kept_in,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn forward_shapes() {
        let mut rng = seeded_rng(50);
        let mut conv = Conv2d::new(1, 8, 5, 1, 2, &mut rng);
        let x = Tensor::randn(&[2, 1, 28, 28], &mut rng);
        let y = conv.forward(&x, true);
        assert_eq!(y.dims(), &[2, 8, 28, 28]);
        assert_eq!(conv.in_channels(), 1);
        assert_eq!(conv.out_channels(), 8);
    }

    #[test]
    fn backward_accumulates_grads() {
        let mut rng = seeded_rng(51);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let y = conv.forward(&x, true);
        let g = Tensor::ones(y.dims());
        let gx = conv.backward(&g);
        assert_eq!(gx.dims(), x.dims());
        assert!(conv.weight.grad.l2_norm() > 0.0);
        assert!(conv.bias.grad.l2_norm() > 0.0);
        // Second backward with same grad doubles the accumulator.
        let w1 = conv.weight.grad.clone();
        conv.forward(&x, true);
        conv.backward(&g);
        let ratio = conv.weight.grad.l1_norm() / w1.l1_norm();
        assert!((ratio - 2.0).abs() < 1e-4);
    }

    #[test]
    fn from_parts_roundtrip() {
        let mut rng = seeded_rng(52);
        let conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        let rebuilt =
            Conv2d::from_parts(conv.weight.value.clone(), conv.bias.value.clone(), conv.spec);
        assert_eq!(rebuilt.weight.value, conv.weight.value);
        assert_eq!(rebuilt.out_channels(), 4);
    }
}
