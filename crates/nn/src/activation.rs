//! Parameter-free activation layers: ReLU and (inverted) dropout.

use fedmp_tensor::{seeded_rng, Tensor};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Rectified linear unit, applied elementwise.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReLU {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// A fresh ReLU layer.
    pub fn new() -> Self {
        ReLU { mask: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let mask: Vec<bool> = input.data().iter().map(|&v| v > 0.0).collect();
        let out = input.map(|v| if v > 0.0 { v } else { 0.0 });
        self.mask = Some(mask);
        out
    }

    /// Backward pass: zeroes gradients where the input was non-positive.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("relu backward before forward");
        assert_eq!(mask.len(), grad_out.numel(), "relu backward: shape changed");
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(mask.iter()) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }
}

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so inference is
/// a no-op.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    #[serde(skip, default = "default_dropout_rng")]
    rng: StdRng,
    #[serde(skip)]
    mask: Option<Vec<f32>>,
}

fn default_dropout_rng() -> StdRng {
    seeded_rng(0)
}

impl Dropout {
    /// A dropout layer with drop probability `p`, seeded for
    /// reproducibility.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout { p, rng: seeded_rng(seed), mask: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        if !training || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.numel())
            .map(|_| if self.rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mut out = input.clone();
        for (v, &m) in out.data_mut().iter_mut().zip(mask.iter()) {
            *v *= m;
        }
        self.mask = Some(mask);
        out
    }

    /// Backward pass: applies the same mask to the gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                assert_eq!(mask.len(), grad_out.numel(), "dropout backward: shape changed");
                let mut g = grad_out.clone();
                for (v, &m) in g.data_mut().iter_mut().zip(mask.iter()) {
                    *v *= m;
                }
                g
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = relu.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, false);
        assert_eq!(y, x);
        // Backward without a mask passes gradients through unchanged.
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[20_000]);
        let y = d.forward(&x, true);
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Dropped positions propagate zero gradient.
        let g = d.backward(&Tensor::ones(&[20_000]));
        for (gv, yv) in g.data().iter().zip(y.data().iter()) {
            assert_eq!(*gv == 0.0, *yv == 0.0);
        }
    }

    #[test]
    fn dropout_zero_p_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 3);
        let x = Tensor::ones(&[8]);
        assert_eq!(d.forward(&x, true), x);
    }
}
