//! Trainable parameters and model state snapshots.

use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: a value tensor plus its gradient accumulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient buffer.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Resets the gradient to zero without reallocating.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// One entry of a model state snapshot: a named tensor plus whether it is
/// trained by SGD (weights/biases) or merely tracked (BN running stats).
///
/// Snapshots are the interchange format of the FL layer: sub-model
/// recovery, residual computation and aggregation all operate on
/// `Vec<StateEntry>` in the deterministic order the model emits them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateEntry {
    /// Stable, path-like name (e.g. `"seq.3.conv.weight"`).
    pub name: String,
    /// The tensor value.
    pub tensor: Tensor,
    /// Whether SGD updates this entry.
    pub trainable: bool,
}

impl StateEntry {
    /// Convenience constructor for a trainable entry.
    pub fn trainable(name: impl Into<String>, tensor: Tensor) -> Self {
        StateEntry { name: name.into(), tensor, trainable: true }
    }

    /// Convenience constructor for a tracked (non-trainable) entry.
    pub fn tracked(name: impl Into<String>, tensor: Tensor) -> Self {
        StateEntry { name: name.into(), tensor, trainable: false }
    }
}

/// Total scalar count across a snapshot.
pub fn state_numel(state: &[StateEntry]) -> usize {
    state.iter().map(|e| e.tensor.numel()).sum()
}

/// Elementwise `a - b` over two equally-shaped snapshots, preserving names.
///
/// # Panics
/// Panics if the snapshots disagree in length, names or shapes.
pub fn state_sub(a: &[StateEntry], b: &[StateEntry]) -> Vec<StateEntry> {
    assert_eq!(a.len(), b.len(), "state_sub: entry count mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            assert_eq!(x.name, y.name, "state_sub: entry name mismatch");
            StateEntry {
                name: x.name.clone(),
                tensor: x.tensor.sub(&y.tensor),
                trainable: x.trainable,
            }
        })
        .collect()
}

/// Elementwise `a + b` over two equally-shaped snapshots.
pub fn state_add(a: &[StateEntry], b: &[StateEntry]) -> Vec<StateEntry> {
    assert_eq!(a.len(), b.len(), "state_add: entry count mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            assert_eq!(x.name, y.name, "state_add: entry name mismatch");
            StateEntry {
                name: x.name.clone(),
                tensor: x.tensor.add(&y.tensor),
                trainable: x.trainable,
            }
        })
        .collect()
}

/// Scales every tensor in the snapshot by `s`.
pub fn state_scale(state: &[StateEntry], s: f32) -> Vec<StateEntry> {
    state
        .iter()
        .map(|e| StateEntry {
            name: e.name.clone(),
            tensor: e.tensor.scale(s),
            trainable: e.trainable,
        })
        .collect()
}

/// Squared L2 distance between two snapshots — the paper's pruning error
/// `Q = E‖x − x_n‖²` evaluated on concrete states.
pub fn state_sq_distance(a: &[StateEntry], b: &[StateEntry]) -> f32 {
    assert_eq!(a.len(), b.len(), "state_sq_distance: entry count mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x.tensor.sq_distance(&y.tensor)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(vals: &[f32]) -> Vec<StateEntry> {
        vec![StateEntry::trainable("w", Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap())]
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::ones(&[3]));
        p.grad.fill(2.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.numel(), 3);
    }

    #[test]
    fn state_arithmetic() {
        let a = snap(&[3.0, 4.0]);
        let b = snap(&[1.0, 1.0]);
        assert_eq!(state_sub(&a, &b)[0].tensor.data(), &[2.0, 3.0]);
        assert_eq!(state_add(&a, &b)[0].tensor.data(), &[4.0, 5.0]);
        assert_eq!(state_scale(&a, 0.5)[0].tensor.data(), &[1.5, 2.0]);
        assert_eq!(state_sq_distance(&a, &b), 4.0 + 9.0);
        assert_eq!(state_numel(&a), 2);
    }

    #[test]
    #[should_panic(expected = "entry count mismatch")]
    fn mismatched_snapshots_panic() {
        let a = snap(&[1.0]);
        let _ = state_sub(&a, &[]);
    }
}
