//! Analytic cost model: FLOPs per sample and parameter bytes per model.
//!
//! The edge simulator converts these numbers into computation and
//! communication time (paper Eq. 5). Costs are computed from the *actual*
//! instantiated architecture, so a pruned sub-model automatically reports
//! proportionally smaller costs — exactly the effect FedMP exploits.

use crate::container::{LayerNode, ResidualBlock, Sequential};
use crate::lstm::LstmLm;
use serde::{Deserialize, Serialize};

/// Cost of one layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerCost {
    /// Human-readable layer path.
    pub name: String,
    /// Multiply–add FLOPs per input sample (2 × MACs for conv/linear).
    pub flops: u64,
    /// Trainable + tracked parameter count.
    pub params: u64,
}

/// Whole-model cost report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostReport {
    /// Per-layer breakdown in forward order.
    pub layers: Vec<LayerCost>,
    /// Total FLOPs per sample (forward pass; training ≈ 3× this).
    pub flops_per_sample: u64,
    /// Total parameter count.
    pub params: u64,
}

impl CostReport {
    /// Model size on the wire in bytes (f32 parameters).
    pub fn param_bytes(&self) -> u64 {
        self.params * 4
    }

    /// Approximate training FLOPs per sample (forward + backward ≈ 3×
    /// forward, the standard rule of thumb).
    pub fn train_flops_per_sample(&self) -> u64 {
        self.flops_per_sample * 3
    }
}

/// Shape as it flows through the network: channels×h×w or flat features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Chw(usize, usize, usize),
    Flat(usize),
}

/// Computes the cost report of `model` for one sample of shape
/// `[channels, height, width]`.
///
/// # Panics
/// Panics if the model's layer shapes are inconsistent with the input.
pub fn model_cost(model: &Sequential, input_chw: (usize, usize, usize)) -> CostReport {
    let mut flow = Flow::Chw(input_chw.0, input_chw.1, input_chw.2);
    let mut layers = Vec::new();
    for (i, l) in model.layers.iter().enumerate() {
        flow = node_cost(l, flow, &i.to_string(), &mut layers);
    }
    let flops_per_sample = layers.iter().map(|l| l.flops).sum();
    let params = layers.iter().map(|l| l.params).sum();
    CostReport { layers, flops_per_sample, params }
}

fn node_cost(node: &LayerNode, flow: Flow, name: &str, out: &mut Vec<LayerCost>) -> Flow {
    match node {
        LayerNode::Conv2d(conv) => {
            let (c, h, w) = expect_chw(flow, name);
            assert_eq!(c, conv.in_channels(), "cost: conv {name} in-channel mismatch");
            let (oh, ow) = conv.spec.out_hw(h, w);
            let oc = conv.out_channels();
            let macs = (oc * c * conv.spec.kh * conv.spec.kw * oh * ow) as u64;
            let params = (conv.weight.value.numel() + conv.bias.value.numel()) as u64;
            out.push(LayerCost { name: format!("{name}:conv"), flops: 2 * macs, params });
            Flow::Chw(oc, oh, ow)
        }
        LayerNode::Linear(lin) => {
            let f = expect_flat(flow, name);
            assert_eq!(f, lin.in_features(), "cost: linear {name} feature mismatch");
            let macs = (lin.in_features() * lin.out_features()) as u64;
            let params = (lin.weight.value.numel() + lin.bias.value.numel()) as u64;
            out.push(LayerCost { name: format!("{name}:linear"), flops: 2 * macs, params });
            Flow::Flat(lin.out_features())
        }
        LayerNode::BatchNorm2d(bn) => {
            let (c, h, w) = expect_chw(flow, name);
            assert_eq!(c, bn.channels(), "cost: bn {name} channel mismatch");
            out.push(LayerCost {
                name: format!("{name}:bn"),
                flops: (4 * c * h * w) as u64,
                params: (4 * c) as u64,
            });
            flow
        }
        LayerNode::ReLU(_) => {
            let n = flow_numel(flow);
            out.push(LayerCost { name: format!("{name}:relu"), flops: n as u64, params: 0 });
            flow
        }
        LayerNode::Dropout(_) => {
            out.push(LayerCost { name: format!("{name}:dropout"), flops: 0, params: 0 });
            flow
        }
        LayerNode::MaxPool2d(p) => {
            let (c, h, w) = expect_chw(flow, name);
            let (oh, ow) = p.spec.out_hw(h, w);
            out.push(LayerCost {
                name: format!("{name}:maxpool"),
                flops: (c * oh * ow * p.spec.kh * p.spec.kw) as u64,
                params: 0,
            });
            Flow::Chw(c, oh, ow)
        }
        LayerNode::AvgPool2d(p) => {
            let (c, h, w) = expect_chw(flow, name);
            let (oh, ow) = p.spec.out_hw(h, w);
            out.push(LayerCost {
                name: format!("{name}:avgpool"),
                flops: (c * oh * ow * p.spec.kh * p.spec.kw) as u64,
                params: 0,
            });
            Flow::Chw(c, oh, ow)
        }
        LayerNode::Flatten(_) => {
            let n = flow_numel(flow);
            Flow::Flat(n)
        }
        LayerNode::Residual(block) => residual_cost(block, flow, name, out),
    }
}

fn residual_cost(block: &ResidualBlock, flow: Flow, name: &str, out: &mut Vec<LayerCost>) -> Flow {
    let mut body_flow = flow;
    for (i, l) in block.body.iter().enumerate() {
        body_flow = node_cost(l, body_flow, &format!("{name}.body.{i}"), out);
    }
    let mut side_flow = flow;
    for (i, l) in block.shortcut.iter().enumerate() {
        side_flow = node_cost(l, side_flow, &format!("{name}.shortcut.{i}"), out);
    }
    assert_eq!(body_flow, side_flow, "cost: residual {name} branch shapes differ");
    // The add + final relu.
    out.push(LayerCost {
        name: format!("{name}:residual-join"),
        flops: 2 * flow_numel(body_flow) as u64,
        params: 0,
    });
    body_flow
}

fn expect_chw(flow: Flow, name: &str) -> (usize, usize, usize) {
    match flow {
        Flow::Chw(c, h, w) => (c, h, w),
        Flow::Flat(_) => panic!("cost: layer {name} expects spatial input after flatten"),
    }
}

fn expect_flat(flow: Flow, name: &str) -> usize {
    match flow {
        Flow::Flat(f) => f,
        Flow::Chw(..) => panic!("cost: linear {name} before flatten"),
    }
}

fn flow_numel(flow: Flow) -> usize {
    match flow {
        Flow::Chw(c, h, w) => c * h * w,
        Flow::Flat(f) => f,
    }
}

/// Cost of an [`LstmLm`] for one token step (per sample): gate GEMMs plus
/// decoder.
pub fn lstm_cost_per_token(lm: &LstmLm) -> CostReport {
    let mut layers = Vec::new();
    layers.push(LayerCost {
        name: "embedding".into(),
        flops: 0, // lookup
        params: lm.embedding.weight.value.numel() as u64,
    });
    for (i, l) in lm.lstms.iter().enumerate() {
        let h = l.hidden();
        let inp = l.input_size();
        let macs = (4 * h * (inp + h)) as u64;
        let params = (l.w_x.value.numel() + l.w_h.value.numel() + l.bias.value.numel()) as u64;
        layers.push(LayerCost { name: format!("lstm.{i}"), flops: 2 * macs, params });
    }
    let dec_macs = (lm.decoder.in_features() * lm.decoder.out_features()) as u64;
    layers.push(LayerCost {
        name: "decoder".into(),
        flops: 2 * dec_macs,
        params: (lm.decoder.weight.value.numel() + lm.decoder.bias.value.numel()) as u64,
    });
    let flops_per_sample = layers.iter().map(|l| l.flops).sum();
    let params = layers.iter().map(|l| l.params).sum();
    CostReport { layers, flops_per_sample, params }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn cnn_cost_matches_hand_computation() {
        let mut rng = seeded_rng(110);
        let m = zoo::cnn_mnist(1.0, &mut rng);
        let report = model_cost(&m, (1, 28, 28));
        // conv1: 2*32*1*25*28*28
        assert_eq!(report.layers[0].flops, 2 * 32 * 25 * 28 * 28);
        // Params: conv1 832, conv2 51264, fc1 3136*256+256, fc2 2570
        let expected_params =
            (32 * 25 + 32) + (64 * 32 * 25 + 64) + (3136 * 256 + 256) + (256 * 10 + 10);
        assert_eq!(report.params, expected_params as u64);
        assert_eq!(report.param_bytes(), expected_params as u64 * 4);
        assert!(report.train_flops_per_sample() == report.flops_per_sample * 3);
    }

    #[test]
    fn smaller_width_means_lower_cost() {
        let mut rng = seeded_rng(111);
        let big = model_cost(&zoo::cnn_mnist(1.0, &mut rng), (1, 28, 28));
        let small = model_cost(&zoo::cnn_mnist(0.5, &mut rng), (1, 28, 28));
        assert!(small.flops_per_sample < big.flops_per_sample);
        assert!(small.params < big.params);
    }

    #[test]
    fn resnet_cost_walks_residual_blocks() {
        let mut rng = seeded_rng(112);
        let m = zoo::resnet_tiny(0.5, &mut rng);
        let report = model_cost(&m, (3, 64, 64));
        assert!(report.flops_per_sample > 0);
        assert!(report.layers.iter().any(|l| l.name.contains("residual-join")));
    }

    #[test]
    fn lstm_cost_scales_with_hidden() {
        let mut rng = seeded_rng(113);
        let small = lstm_cost_per_token(&LstmLm::new(50, 16, 32, 2, &mut rng));
        let big = lstm_cost_per_token(&LstmLm::new(50, 16, 64, 2, &mut rng));
        assert!(big.flops_per_sample > 2 * small.flops_per_sample);
    }
}
