//! Flatten: NCHW activations → `[batch, features]` for the FC head.

use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Reshapes `[n, c, h, w]` to `[n, c*h*w]`, remembering the original shape
/// for the backward pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten {
    #[serde(skip)]
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// A fresh flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let d = input.dims();
        assert!(d.len() >= 2, "flatten expects at least rank-2 input");
        self.input_dims = Some(d.to_vec());
        let batch = d[0];
        let features: usize = d[1..].iter().product();
        input.reshape(&[batch, features])
    }

    /// Backward pass: un-flattens the gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self.input_dims.as_ref().expect("flatten backward before forward");
        grad_out.reshape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.dims(), &[2, 3, 4, 4]);
    }
}
