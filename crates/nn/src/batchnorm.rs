//! Batch normalisation over channels of NCHW activations.
//!
//! Pruning interacts with BN directly: when a conv filter is removed, the
//! corresponding `gamma`, `beta`, `running_mean` and `running_var` entries
//! are removed too (paper §III-B), and R2SP restores them on recovery.

use crate::param::Param;
use fedmp_tensor::parallel::sum_f32;
use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Per-channel batch normalisation for `[n, c, h, w]` activations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Scale parameter γ, `[c]`.
    pub gamma: Param,
    /// Shift parameter β, `[c]`.
    pub beta: Param,
    /// Running mean (inference statistics), `[c]`.
    pub running_mean: Tensor,
    /// Running variance (inference statistics), `[c]`.
    pub running_var: Tensor,
    /// Exponential-average momentum for the running statistics.
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    #[serde(skip)]
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_dims: Vec<usize>,
}

impl BatchNorm2d {
    /// A fresh BN layer for `channels` channels (γ=1, β=0).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Rebuilds a BN layer from saved tensors (pruning reconstruction).
    pub fn from_parts(
        gamma: Tensor,
        beta: Tensor,
        running_mean: Tensor,
        running_var: Tensor,
    ) -> Self {
        let c = gamma.numel();
        assert_eq!(beta.numel(), c, "bn: beta length mismatch");
        assert_eq!(running_mean.numel(), c, "bn: running_mean length mismatch");
        assert_eq!(running_var.numel(), c, "bn: running_var length mismatch");
        BatchNorm2d {
            gamma: Param::new(gamma),
            beta: Param::new(beta),
            running_mean,
            running_var,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.value.numel()
    }

    /// Forward pass. In training mode uses batch statistics and updates the
    /// running averages; in inference mode uses the running statistics.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let d = input.dims();
        assert_eq!(d.len(), 4, "batchnorm2d expects NCHW input");
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        assert_eq!(c, self.channels(), "batchnorm2d channel mismatch");
        let plane = h * w;
        let count = (n * plane) as f32;

        let mut out = Tensor::zeros(d);
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();

        if training {
            let mut x_hat = Tensor::zeros(d);
            let mut inv_stds = vec![0.0f32; c];
            for ch in 0..c {
                // Batch mean/variance of channel `ch` over N×H×W.
                let mut mean = 0.0f32;
                for i in 0..n {
                    let base = (i * c + ch) * plane;
                    mean += sum_f32(input.data()[base..base + plane].iter().copied());
                }
                mean /= count;
                let mut var = 0.0f32;
                for i in 0..n {
                    let base = (i * c + ch) * plane;
                    for &v in &input.data()[base..base + plane] {
                        let dlt = v - mean;
                        var += dlt * dlt;
                    }
                }
                var /= count;

                let inv_std = 1.0 / (var + self.eps).sqrt();
                inv_stds[ch] = inv_std;
                let (g, b) = (gamma[ch], beta[ch]);
                for i in 0..n {
                    let base = (i * c + ch) * plane;
                    for k in 0..plane {
                        let xh = (input.data()[base + k] - mean) * inv_std;
                        x_hat.data_mut()[base + k] = xh;
                        out.data_mut()[base + k] = g * xh + b;
                    }
                }
                let m = self.momentum;
                self.running_mean.data_mut()[ch] =
                    (1.0 - m) * self.running_mean.data()[ch] + m * mean;
                self.running_var.data_mut()[ch] = (1.0 - m) * self.running_var.data()[ch] + m * var;
            }
            self.cache = Some(BnCache { x_hat, inv_std: inv_stds, input_dims: d.to_vec() });
        } else {
            for ch in 0..c {
                let mean = self.running_mean.data()[ch];
                let inv_std = 1.0 / (self.running_var.data()[ch] + self.eps).sqrt();
                let (g, b) = (gamma[ch], beta[ch]);
                for i in 0..n {
                    let base = (i * c + ch) * plane;
                    for k in 0..plane {
                        out.data_mut()[base + k] =
                            g * (input.data()[base + k] - mean) * inv_std + b;
                    }
                }
            }
        }
        out
    }

    /// Backward pass (training mode only).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("batchnorm backward before training forward");
        let d = &cache.input_dims;
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        assert_eq!(grad_out.dims(), d.as_slice(), "batchnorm backward: grad shape");
        let plane = h * w;
        let count = (n * plane) as f32;

        let mut grad_in = Tensor::zeros(d);
        let gamma = self.gamma.value.data().to_vec();
        // `ch` indexes four parallel per-channel arrays; enumerate would
        // single one out arbitrarily.
        #[allow(clippy::needless_range_loop)]
        for ch in 0..c {
            // Accumulate dγ, dβ, and the two reduction terms of the BN
            // input gradient.
            let mut d_gamma = 0.0f32;
            let mut d_beta = 0.0f32;
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for k in 0..plane {
                    let go = grad_out.data()[base + k];
                    d_gamma += go * cache.x_hat.data()[base + k];
                    d_beta += go;
                }
            }
            self.gamma.grad.data_mut()[ch] += d_gamma;
            self.beta.grad.data_mut()[ch] += d_beta;

            let g = gamma[ch];
            let inv_std = cache.inv_std[ch];
            // dx = γ·inv_std/count · (count·go − Σgo − x̂·Σ(go·x̂))
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for k in 0..plane {
                    let go = grad_out.data()[base + k];
                    let xh = cache.x_hat.data()[base + k];
                    grad_in.data_mut()[base + k] =
                        g * inv_std / count * (count * go - d_beta - xh * d_gamma);
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn training_output_is_normalised() {
        let mut rng = seeded_rng(60);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], &mut rng).scale(3.0).map(|v| v + 7.0);
        let y = bn.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1.
        for ch in 0..3 {
            let mut vals = Vec::new();
            for i in 0..4 {
                let base = (i * 3 + ch) * 25;
                vals.extend_from_slice(&y.data()[base..base + 25]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn running_stats_track_batch_stats() {
        let mut rng = seeded_rng(61);
        let mut bn = BatchNorm2d::new(2);
        bn.momentum = 1.0; // copy batch stats directly
        let x = Tensor::randn(&[8, 2, 4, 4], &mut rng).map(|v| v * 2.0 + 5.0);
        bn.forward(&x, true);
        for ch in 0..2 {
            assert!((bn.running_mean.data()[ch] - 5.0).abs() < 0.3);
            assert!((bn.running_var.data()[ch] - 4.0).abs() < 1.2);
        }
        // Inference then roughly re-normalises the same distribution.
        let y = bn.forward(&x, false);
        assert!(y.mean().abs() < 0.1);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = seeded_rng(62);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value.data_mut().copy_from_slice(&[1.3, 0.7]);
        bn.beta.value.data_mut().copy_from_slice(&[0.2, -0.1]);
        let x = Tensor::randn(&[2, 2, 3, 3], &mut rng);

        // Loss = Σ y² / 2 so dL/dy = y.
        let y = bn.forward(&x, true);
        let gx = bn.backward(&y);

        let loss = |bn: &BatchNorm2d, x: &Tensor| {
            let mut b = bn.clone();
            let y = b.forward(x, true);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let eps = 1e-2f32;
        for idx in [0usize, 5, 17, 35] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&bn, &xp) - loss(&bn, &xm)) / (2.0 * eps);
            assert!((num - gx.data()[idx]).abs() < 5e-2, "idx {idx}: {num} vs {}", gx.data()[idx]);
        }
    }

    #[test]
    fn from_parts_validates() {
        let bn = BatchNorm2d::from_parts(
            Tensor::ones(&[4]),
            Tensor::zeros(&[4]),
            Tensor::zeros(&[4]),
            Tensor::ones(&[4]),
        );
        assert_eq!(bn.channels(), 4);
    }
}
