//! Adam optimizer and learning-rate schedules.
//!
//! The paper trains with SGD; Adam and the schedules below are provided
//! for downstream users of the library (and exercised by the test
//! suite) — a training stack without them would not be adoptable.

use crate::optim::ParamVisitor;
use crate::param::Param;
use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Adam (Kingma & Ba, 2015) with bias correction.
///
/// Like [`crate::Sgd`], moment buffers are keyed by parameter visit
/// order, so one instance must stay paired with one model architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style; 0 disables).
    pub weight_decay: f32,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard defaults (β₁ = 0.9, β₂ = 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// AdamW: decoupled weight decay.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Adam { weight_decay, ..Adam::new(lr) }
    }

    /// Applies one update step to every parameter of `model`.
    pub fn step(&mut self, model: &mut impl ParamVisitor) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |p: &mut Param| {
            if ms.len() == idx {
                ms.push(Tensor::zeros(p.value.dims()));
                vs.push(Tensor::zeros(p.value.dims()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            assert_eq!(
                m.dims(),
                p.value.dims(),
                "Adam buffer shape drift: re-create after model change"
            );
            for (((w, &g), mi), vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(m.data_mut().iter_mut())
                .zip(v.data_mut().iter_mut())
            {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                // Decoupled decay applies to the weight directly.
                *w -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *w);
            }
            idx += 1;
        });
    }
}

/// A learning-rate schedule: maps a step index to a multiplier of the
/// base learning rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    Constant,
    /// Multiply by `gamma` every `every` steps.
    Step {
        /// Steps between decays.
        every: u64,
        /// Decay factor per boundary.
        gamma: f32,
    },
    /// Cosine annealing from 1 to `floor` over `total` steps, constant
    /// at `floor` afterwards.
    Cosine {
        /// Annealing horizon.
        total: u64,
        /// Terminal multiplier.
        floor: f32,
    },
    /// Linear warmup from 0 over `warmup` steps, then constant 1.
    Warmup {
        /// Warmup length.
        warmup: u64,
    },
}

impl LrSchedule {
    /// The multiplier at step `t` (0-based).
    pub fn factor(&self, t: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Step { every, gamma } => {
                assert!(every > 0, "step schedule needs a positive period");
                gamma.powi((t / every) as i32)
            }
            LrSchedule::Cosine { total, floor } => {
                if t >= total {
                    floor
                } else {
                    let progress = t as f32 / total.max(1) as f32;
                    floor + (1.0 - floor) * 0.5 * (1.0 + (std::f32::consts::PI * progress).cos())
                }
            }
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || t >= warmup {
                    1.0
                } else {
                    (t + 1) as f32 / warmup as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{LayerNode, Sequential};
    use crate::linear::Linear;
    use fedmp_tensor::{cross_entropy_loss, seeded_rng, Tensor};

    fn model() -> Sequential {
        Sequential::new(vec![LayerNode::Linear(Linear::new(6, 3, &mut seeded_rng(300)))])
    }

    #[test]
    fn adam_reduces_loss() {
        let mut m = model();
        let mut opt = Adam::new(0.05);
        let mut rng = seeded_rng(301);
        let x = Tensor::randn(&[12, 6], &mut rng);
        let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for k in 0..60 {
            m.zero_grad();
            let out = cross_entropy_loss(&m.forward(&x, true), &labels);
            m.backward(&out.grad_logits);
            opt.step(&mut m);
            if k == 0 {
                first = out.loss;
            }
            last = out.loss;
        }
        assert!(last < first * 0.3, "{first} -> {last}");
    }

    #[test]
    fn adamw_decay_shrinks_weights_without_gradients() {
        let mut m = model();
        let before: f32 = fedmp_tensor::Tensor::zeros(&[1]).sum() + {
            let mut s = 0.0;
            m.for_each_param_mut(&mut |p| s += p.value.l2_norm());
            s
        };
        let mut opt = Adam::with_weight_decay(0.1, 0.5);
        for _ in 0..30 {
            m.zero_grad();
            opt.step(&mut m);
        }
        let mut after = 0.0;
        m.for_each_param_mut(&mut |p| after += p.value.l2_norm());
        assert!(after < before * 0.5, "{before} -> {after}");
    }

    #[test]
    fn step_schedule_decays_at_boundaries() {
        let s = LrSchedule::Step { every: 10, gamma: 0.5 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_schedule_monotone_to_floor() {
        let s = LrSchedule::Cosine { total: 100, floor: 0.1 };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        let mut prev = 1.0f32;
        for t in (0..100).step_by(10) {
            let f = s.factor(t);
            assert!(f <= prev + 1e-6, "not monotone at {t}");
            prev = f;
        }
        assert!((s.factor(100) - 0.1).abs() < 1e-6);
        assert!((s.factor(10_000) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(s.factor(0), 0.25);
        assert_eq!(s.factor(1), 0.5);
        assert_eq!(s.factor(3), 1.0);
        assert_eq!(s.factor(100), 1.0);
        assert_eq!(LrSchedule::Constant.factor(5), 1.0);
    }
}
