//! Model containers: the [`LayerNode`] enum tree, [`Sequential`] models
//! and [`ResidualBlock`]s.
//!
//! Models are closed enum trees so that `fedmp-pruning` can pattern-match
//! on layer kinds when computing importance scores and materialising
//! sub-models. Every container exposes:
//!
//! * `forward` / `backward` — training passes with per-layer caches,
//! * `state` / `load_state` — ordered named snapshots (the FL interchange
//!   format),
//! * `for_each_param_mut` — optimizer access in deterministic order.

use crate::activation::{Dropout, ReLU};
use crate::batchnorm::BatchNorm2d;
use crate::conv_layer::Conv2d;
use crate::flatten::Flatten;
use crate::linear::Linear;
use crate::param::{Param, StateEntry};
use crate::pool_layer::{AvgPool2d, MaxPool2d};
use fedmp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One node of a model tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LayerNode {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully connected layer.
    Linear(Linear),
    /// Batch normalisation.
    BatchNorm2d(BatchNorm2d),
    /// ReLU activation.
    ReLU(ReLU),
    /// Inverted dropout.
    Dropout(Dropout),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Average pooling.
    AvgPool2d(AvgPool2d),
    /// NCHW → `[batch, features]`.
    Flatten(Flatten),
    /// Residual block with optional projection shortcut.
    Residual(ResidualBlock),
}

impl LayerNode {
    /// Forward pass through this node.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        match self {
            LayerNode::Conv2d(l) => l.forward(input, training),
            LayerNode::Linear(l) => l.forward(input, training),
            LayerNode::BatchNorm2d(l) => l.forward(input, training),
            LayerNode::ReLU(l) => l.forward(input, training),
            LayerNode::Dropout(l) => l.forward(input, training),
            LayerNode::MaxPool2d(l) => l.forward(input, training),
            LayerNode::AvgPool2d(l) => l.forward(input, training),
            LayerNode::Flatten(l) => l.forward(input, training),
            LayerNode::Residual(l) => l.forward(input, training),
        }
    }

    /// Backward pass through this node.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self {
            LayerNode::Conv2d(l) => l.backward(grad_out),
            LayerNode::Linear(l) => l.backward(grad_out),
            LayerNode::BatchNorm2d(l) => l.backward(grad_out),
            LayerNode::ReLU(l) => l.backward(grad_out),
            LayerNode::Dropout(l) => l.backward(grad_out),
            LayerNode::MaxPool2d(l) => l.backward(grad_out),
            LayerNode::AvgPool2d(l) => l.backward(grad_out),
            LayerNode::Flatten(l) => l.backward(grad_out),
            LayerNode::Residual(l) => l.backward(grad_out),
        }
    }

    /// Visits every trainable parameter in deterministic order.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            LayerNode::Conv2d(l) => {
                f(&mut l.weight);
                f(&mut l.bias);
            }
            LayerNode::Linear(l) => {
                f(&mut l.weight);
                f(&mut l.bias);
            }
            LayerNode::BatchNorm2d(l) => {
                f(&mut l.gamma);
                f(&mut l.beta);
            }
            LayerNode::Residual(l) => l.for_each_param_mut(f),
            LayerNode::ReLU(_)
            | LayerNode::Dropout(_)
            | LayerNode::MaxPool2d(_)
            | LayerNode::AvgPool2d(_)
            | LayerNode::Flatten(_) => {}
        }
    }

    /// Appends this node's state entries under the name prefix.
    pub fn collect_state(&self, prefix: &str, out: &mut Vec<StateEntry>) {
        match self {
            LayerNode::Conv2d(l) => {
                out.push(StateEntry::trainable(format!("{prefix}.weight"), l.weight.value.clone()));
                out.push(StateEntry::trainable(format!("{prefix}.bias"), l.bias.value.clone()));
            }
            LayerNode::Linear(l) => {
                out.push(StateEntry::trainable(format!("{prefix}.weight"), l.weight.value.clone()));
                out.push(StateEntry::trainable(format!("{prefix}.bias"), l.bias.value.clone()));
            }
            LayerNode::BatchNorm2d(l) => {
                out.push(StateEntry::trainable(format!("{prefix}.gamma"), l.gamma.value.clone()));
                out.push(StateEntry::trainable(format!("{prefix}.beta"), l.beta.value.clone()));
                out.push(StateEntry::tracked(
                    format!("{prefix}.running_mean"),
                    l.running_mean.clone(),
                ));
                out.push(StateEntry::tracked(
                    format!("{prefix}.running_var"),
                    l.running_var.clone(),
                ));
            }
            LayerNode::Residual(l) => l.collect_state(prefix, out),
            LayerNode::ReLU(_)
            | LayerNode::Dropout(_)
            | LayerNode::MaxPool2d(_)
            | LayerNode::AvgPool2d(_)
            | LayerNode::Flatten(_) => {}
        }
    }

    /// Loads state entries in the same order `collect_state` emitted them.
    /// Returns how many entries were consumed.
    pub fn load_state(&mut self, prefix: &str, entries: &[StateEntry]) -> usize {
        fn take<'a>(entries: &'a [StateEntry], i: &mut usize, name: &str) -> &'a Tensor {
            let e = entries.get(*i).unwrap_or_else(|| panic!("load_state: missing entry {name}"));
            assert_eq!(e.name, name, "load_state: expected {name}, found {}", e.name);
            *i += 1;
            &e.tensor
        }
        let mut i = 0usize;
        match self {
            LayerNode::Conv2d(l) => {
                let w = take(entries, &mut i, &format!("{prefix}.weight"));
                assert_eq!(w.dims(), l.weight.value.dims(), "load_state: conv weight shape");
                l.weight.value = w.clone();
                l.bias.value = take(entries, &mut i, &format!("{prefix}.bias")).clone();
            }
            LayerNode::Linear(l) => {
                let w = take(entries, &mut i, &format!("{prefix}.weight"));
                assert_eq!(w.dims(), l.weight.value.dims(), "load_state: linear weight shape");
                l.weight.value = w.clone();
                l.bias.value = take(entries, &mut i, &format!("{prefix}.bias")).clone();
            }
            LayerNode::BatchNorm2d(l) => {
                l.gamma.value = take(entries, &mut i, &format!("{prefix}.gamma")).clone();
                l.beta.value = take(entries, &mut i, &format!("{prefix}.beta")).clone();
                l.running_mean = take(entries, &mut i, &format!("{prefix}.running_mean")).clone();
                l.running_var = take(entries, &mut i, &format!("{prefix}.running_var")).clone();
            }
            LayerNode::Residual(l) => {
                i += l.load_state(prefix, entries);
            }
            LayerNode::ReLU(_)
            | LayerNode::Dropout(_)
            | LayerNode::MaxPool2d(_)
            | LayerNode::AvgPool2d(_)
            | LayerNode::Flatten(_) => {}
        }
        i
    }
}

/// A residual block: `out = relu(body(x) + shortcut(x))`, where the
/// shortcut is identity or a 1×1 conv (+BN) projection when dimensions
/// change.
///
/// Structured pruning only touches the *internal* convolutions of the
/// body (the block's output width is pinned by the skip connection), the
/// standard constraint for channel pruning of residual networks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidualBlock {
    /// Main path.
    pub body: Vec<LayerNode>,
    /// Projection path; `None` means identity shortcut.
    pub shortcut: Vec<LayerNode>,
    #[serde(skip)]
    relu_mask: Option<Vec<bool>>,
}

impl ResidualBlock {
    /// Builds a block from a body and an optional projection path.
    pub fn new(body: Vec<LayerNode>, shortcut: Vec<LayerNode>) -> Self {
        ResidualBlock { body, shortcut, relu_mask: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut main = input.clone();
        for l in &mut self.body {
            main = l.forward(&main, training);
        }
        let mut side = input.clone();
        for l in &mut self.shortcut {
            side = l.forward(&side, training);
        }
        assert_eq!(main.dims(), side.dims(), "residual block: body/shortcut output shapes differ");
        let pre = main.add(&side);
        self.relu_mask = Some(pre.data().iter().map(|&v| v > 0.0).collect());
        pre.map(|v| if v > 0.0 { v } else { 0.0 })
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.relu_mask.as_ref().expect("residual backward before forward");
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(mask.iter()) {
            if !keep {
                *v = 0.0;
            }
        }
        let mut g_body = g.clone();
        for l in self.body.iter_mut().rev() {
            g_body = l.backward(&g_body);
        }
        let mut g_side = g;
        for l in self.shortcut.iter_mut().rev() {
            g_side = l.backward(&g_side);
        }
        g_body.add(&g_side)
    }

    /// Visits trainable parameters (body then shortcut).
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.body {
            l.for_each_param_mut(f);
        }
        for l in &mut self.shortcut {
            l.for_each_param_mut(f);
        }
    }

    /// Appends state entries under `prefix`.
    pub fn collect_state(&self, prefix: &str, out: &mut Vec<StateEntry>) {
        for (i, l) in self.body.iter().enumerate() {
            l.collect_state(&format!("{prefix}.body.{i}"), out);
        }
        for (i, l) in self.shortcut.iter().enumerate() {
            l.collect_state(&format!("{prefix}.shortcut.{i}"), out);
        }
    }

    /// Loads state entries in emission order; returns entries consumed.
    pub fn load_state(&mut self, prefix: &str, entries: &[StateEntry]) -> usize {
        let mut consumed = 0usize;
        for (i, l) in self.body.iter_mut().enumerate() {
            consumed += l.load_state(&format!("{prefix}.body.{i}"), &entries[consumed..]);
        }
        for (i, l) in self.shortcut.iter_mut().enumerate() {
            consumed += l.load_state(&format!("{prefix}.shortcut.{i}"), &entries[consumed..]);
        }
        consumed
    }
}

/// A sequential model: layers applied in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    /// The layer pipeline.
    pub layers: Vec<LayerNode>,
}

impl Sequential {
    /// Builds a model from a layer list.
    pub fn new(layers: Vec<LayerNode>) -> Self {
        Sequential { layers }
    }

    /// Forward pass through every layer.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x, training);
        }
        x
    }

    /// Backward pass through every layer in reverse; accumulates parameter
    /// gradients and returns the input gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// Visits every trainable parameter in deterministic order.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.for_each_param_mut(f);
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.for_each_param_mut(&mut |p| p.zero_grad());
    }

    /// Ordered, named snapshot of all weights and tracked statistics.
    pub fn state(&self) -> Vec<StateEntry> {
        let mut out = Vec::new();
        for (i, l) in self.layers.iter().enumerate() {
            l.collect_state(&i.to_string(), &mut out);
        }
        out
    }

    /// Loads a snapshot previously produced by [`Sequential::state`] on a
    /// model of identical architecture.
    ///
    /// # Panics
    /// Panics on any name/shape mismatch or leftover entries.
    pub fn load_state(&mut self, entries: &[StateEntry]) {
        let mut consumed = 0usize;
        for (i, l) in self.layers.iter_mut().enumerate() {
            consumed += l.load_state(&i.to_string(), &entries[consumed..]);
        }
        assert_eq!(
            consumed,
            entries.len(),
            "load_state: {} leftover entries",
            entries.len() - consumed
        );
    }

    /// Total trainable parameter count.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0usize;
        self.for_each_param_mut(&mut |p| n += p.numel());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmp_tensor::{cross_entropy_loss, seeded_rng};

    fn tiny_cnn(rng: &mut rand::rngs::StdRng) -> Sequential {
        Sequential::new(vec![
            LayerNode::Conv2d(Conv2d::new(1, 4, 3, 1, 1, rng)),
            LayerNode::BatchNorm2d(BatchNorm2d::new(4)),
            LayerNode::ReLU(ReLU::new()),
            LayerNode::MaxPool2d(MaxPool2d::new(2)),
            LayerNode::Flatten(Flatten::new()),
            LayerNode::Linear(Linear::new(4 * 4 * 4, 3, rng)),
        ])
    }

    #[test]
    fn sequential_forward_backward_shapes() {
        let mut rng = seeded_rng(80);
        let mut m = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[2, 1, 8, 8], &mut rng);
        let logits = m.forward(&x, true);
        assert_eq!(logits.dims(), &[2, 3]);
        let out = cross_entropy_loss(&logits, &[0, 2]);
        let gx = m.backward(&out.grad_logits);
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn state_roundtrip() {
        let mut rng = seeded_rng(81);
        let m = tiny_cnn(&mut rng);
        let state = m.state();
        // conv w+b, bn γ/β/mean/var, linear w+b
        assert_eq!(state.len(), 8);
        assert_eq!(state[0].name, "0.weight");
        assert_eq!(state[4].name, "1.running_mean");
        assert_eq!(state[5].name, "1.running_var");
        let mut m2 = tiny_cnn(&mut rng); // different random weights
        m2.load_state(&state);
        assert_eq!(m2.state()[0].tensor, state[0].tensor);
        assert_eq!(m2.state()[7].tensor, state[7].tensor);
    }

    #[test]
    fn param_count() {
        let mut rng = seeded_rng(82);
        let mut m = tiny_cnn(&mut rng);
        // conv: 4*1*3*3 + 4 = 40; bn: 4 + 4 = 8; linear: 3*64 + 3 = 195
        assert_eq!(m.num_params(), 40 + 8 + 195);
    }

    #[test]
    fn residual_block_identity_shortcut() {
        let mut rng = seeded_rng(83);
        let block = ResidualBlock::new(
            vec![
                LayerNode::Conv2d(Conv2d::new(4, 4, 3, 1, 1, &mut rng)),
                LayerNode::ReLU(ReLU::new()),
                LayerNode::Conv2d(Conv2d::new(4, 4, 3, 1, 1, &mut rng)),
            ],
            vec![],
        );
        let mut m = Sequential::new(vec![LayerNode::Residual(block)]);
        let x = Tensor::randn(&[1, 4, 6, 6], &mut rng);
        let y = m.forward(&x, true);
        assert_eq!(y.dims(), x.dims());
        let gx = m.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn residual_block_gradient_check() {
        let mut rng = seeded_rng(84);
        let block = ResidualBlock::new(
            vec![LayerNode::Conv2d(Conv2d::new(2, 2, 3, 1, 1, &mut rng))],
            vec![],
        );
        let mut m = Sequential::new(vec![LayerNode::Residual(block)]);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);

        let y = m.forward(&x, true);
        let gx = m.backward(&Tensor::ones(y.dims()));

        let eps = 1e-2f32;
        for idx in [0usize, 9, 21, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let mut mp = m.clone();
            let mut mm = m.clone();
            let num = (mp.forward(&xp, true).sum() - mm.forward(&xm, true).sum()) / (2.0 * eps);
            assert!((num - gx.data()[idx]).abs() < 0.05, "idx {idx}");
        }
    }

    #[test]
    fn residual_projection_shortcut() {
        let mut rng = seeded_rng(85);
        // Body downsamples 4→8 channels, stride 2; shortcut projects.
        let block = ResidualBlock::new(
            vec![
                LayerNode::Conv2d(Conv2d::new(4, 8, 3, 2, 1, &mut rng)),
                LayerNode::BatchNorm2d(BatchNorm2d::new(8)),
            ],
            vec![
                LayerNode::Conv2d(Conv2d::new(4, 8, 1, 2, 0, &mut rng)),
                LayerNode::BatchNorm2d(BatchNorm2d::new(8)),
            ],
        );
        let mut m = Sequential::new(vec![LayerNode::Residual(block)]);
        let x = Tensor::randn(&[2, 4, 8, 8], &mut rng);
        let y = m.forward(&x, true);
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
        let gx = m.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut rng = seeded_rng(86);
        let mut m = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[1, 1, 8, 8], &mut rng);
        let y = m.forward(&x, true);
        m.backward(&Tensor::ones(y.dims()));
        m.zero_grad();
        m.for_each_param_mut(&mut |p| assert_eq!(p.grad.l1_norm(), 0.0));
    }
}
