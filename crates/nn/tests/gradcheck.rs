//! Finite-difference gradient checks across random layer configurations
//! — the ground truth every hand-written backward pass must match.

use fedmp_nn::{BatchNorm2d, Conv2d, LayerNode, Linear, MaxPool2d, ReLU, Sequential};
use fedmp_tensor::{cross_entropy_loss, seeded_rng, Tensor};
use proptest::prelude::*;

/// Central-difference gradient of the CE loss w.r.t. one weight.
fn numeric_grad(
    model: &Sequential,
    x: &Tensor,
    labels: &[usize],
    param_path: impl Fn(&mut Sequential) -> &mut f32,
    eps: f32,
) -> f32 {
    let mut mp = model.clone();
    *param_path(&mut mp) += eps;
    let lp = cross_entropy_loss(&mp.forward(x, true), labels).loss;
    let mut mm = model.clone();
    *param_path(&mut mm) -= eps;
    let lm = cross_entropy_loss(&mm.forward(x, true), labels).loss;
    (lp - lm) / (2.0 * eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conv_relu_pool_linear_gradients(seed in 0u64..2000, oc in 2usize..5) {
        let mut rng = seeded_rng(seed);
        let mut model = Sequential::new(vec![
            LayerNode::Conv2d(Conv2d::new(1, oc, 3, 1, 1, &mut rng)),
            LayerNode::ReLU(ReLU::new()),
            LayerNode::MaxPool2d(MaxPool2d::new(2)),
            LayerNode::Flatten(fedmp_nn::Flatten::new()),
            LayerNode::Linear(Linear::new(oc * 4 * 4, 3, &mut rng)),
        ]);
        let x = Tensor::randn(&[2, 1, 8, 8], &mut rng);
        let labels = vec![0usize, 2];

        model.zero_grad();
        let out = cross_entropy_loss(&model.forward(&x, true), &labels);
        model.backward(&out.grad_logits);

        // Check a handful of conv weights against finite differences.
        let analytic: Vec<f32> = match &model.layers[0] {
            LayerNode::Conv2d(c) => c.weight.grad.data().to_vec(),
            _ => unreachable!(),
        };
        for idx in [0usize, 3, 7] {
            let grad_at = |eps: f32| {
                numeric_grad(&model, &x, &labels, |m| {
                    match &mut m.layers[0] {
                        LayerNode::Conv2d(c) => &mut c.weight.value.data_mut()[idx],
                        _ => unreachable!(),
                    }
                }, eps)
            };
            // The max-pool argmax is a kink: when the ±eps interval
            // crosses a pooling-winner change, central differences are
            // meaningless (they average the two slopes). Detect kinks by
            // comparing two step sizes and skip those coordinates.
            let num_a = grad_at(1e-2);
            let num_b = grad_at(4e-3);
            let kink = (num_a - num_b).abs() > 0.02 + 0.1 * num_a.abs();
            if kink {
                continue;
            }
            prop_assert!(
                (num_b - analytic[idx]).abs() < 5e-2 + 0.15 * num_b.abs(),
                "conv grad {}: numeric {} vs analytic {}", idx, num_b, analytic[idx]
            );
        }
    }

    #[test]
    fn batchnorm_gamma_gradients(seed in 0u64..2000) {
        let mut rng = seeded_rng(seed);
        let mut model = Sequential::new(vec![
            LayerNode::Conv2d(Conv2d::new(1, 3, 3, 1, 1, &mut rng)),
            LayerNode::BatchNorm2d(BatchNorm2d::new(3)),
            LayerNode::ReLU(ReLU::new()),
            LayerNode::Flatten(fedmp_nn::Flatten::new()),
            LayerNode::Linear(Linear::new(3 * 6 * 6, 2, &mut rng)),
        ]);
        let x = Tensor::randn(&[3, 1, 6, 6], &mut rng);
        let labels = vec![0usize, 1, 0];

        model.zero_grad();
        let out = cross_entropy_loss(&model.forward(&x, true), &labels);
        model.backward(&out.grad_logits);

        let analytic: Vec<f32> = match &model.layers[1] {
            LayerNode::BatchNorm2d(b) => b.gamma.grad.data().to_vec(),
            _ => unreachable!(),
        };
        for idx in 0..3 {
            let num = numeric_grad(&model, &x, &labels, |m| {
                match &mut m.layers[1] {
                    LayerNode::BatchNorm2d(b) => &mut b.gamma.value.data_mut()[idx],
                    _ => unreachable!(),
                }
            }, 1e-2);
            prop_assert!(
                (num - analytic[idx]).abs() < 2e-2,
                "gamma grad {}: numeric {} vs analytic {}", idx, num, analytic[idx]
            );
        }
    }

    #[test]
    fn linear_bias_gradients(seed in 0u64..2000, classes in 2usize..6) {
        let mut rng = seeded_rng(seed);
        let mut model = Sequential::new(vec![
            LayerNode::Linear(Linear::new(5, classes, &mut rng)),
        ]);
        let x = Tensor::randn(&[4, 5], &mut rng);
        let labels: Vec<usize> = (0..4).map(|i| i % classes).collect();

        model.zero_grad();
        let out = cross_entropy_loss(&model.forward(&x, true), &labels);
        model.backward(&out.grad_logits);

        let analytic: Vec<f32> = match &model.layers[0] {
            LayerNode::Linear(l) => l.bias.grad.data().to_vec(),
            _ => unreachable!(),
        };
        for idx in 0..classes {
            let num = numeric_grad(&model, &x, &labels, |m| {
                match &mut m.layers[0] {
                    LayerNode::Linear(l) => &mut l.bias.value.data_mut()[idx],
                    _ => unreachable!(),
                }
            }, 1e-3);
            prop_assert!((num - analytic[idx]).abs() < 1e-2);
        }
    }
}
