//! Finite-difference gradient checks across random layer configurations
//! — the ground truth every hand-written backward pass must match.

use fedmp_nn::{BatchNorm2d, Conv2d, LayerNode, Linear, LstmLm, MaxPool2d, ReLU, Sequential};
use fedmp_tensor::{cross_entropy_loss, seeded_rng, Tensor};
use proptest::prelude::*;

/// Central-difference gradient of the CE loss w.r.t. one weight.
fn numeric_grad(
    model: &Sequential,
    x: &Tensor,
    labels: &[usize],
    param_path: impl Fn(&mut Sequential) -> &mut f32,
    eps: f32,
) -> f32 {
    let mut mp = model.clone();
    *param_path(&mut mp) += eps;
    let lp = cross_entropy_loss(&mp.forward(x, true), labels).loss;
    let mut mm = model.clone();
    *param_path(&mut mm) -= eps;
    let lm = cross_entropy_loss(&mm.forward(x, true), labels).loss;
    (lp - lm) / (2.0 * eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conv_relu_pool_linear_gradients(seed in 0u64..2000, oc in 2usize..5) {
        let mut rng = seeded_rng(seed);
        let mut model = Sequential::new(vec![
            LayerNode::Conv2d(Conv2d::new(1, oc, 3, 1, 1, &mut rng)),
            LayerNode::ReLU(ReLU::new()),
            LayerNode::MaxPool2d(MaxPool2d::new(2)),
            LayerNode::Flatten(fedmp_nn::Flatten::new()),
            LayerNode::Linear(Linear::new(oc * 4 * 4, 3, &mut rng)),
        ]);
        let x = Tensor::randn(&[2, 1, 8, 8], &mut rng);
        let labels = vec![0usize, 2];

        model.zero_grad();
        let out = cross_entropy_loss(&model.forward(&x, true), &labels);
        model.backward(&out.grad_logits);

        // Check a handful of conv weights against finite differences.
        let analytic: Vec<f32> = match &model.layers[0] {
            LayerNode::Conv2d(c) => c.weight.grad.data().to_vec(),
            _ => unreachable!(),
        };
        for idx in [0usize, 3, 7] {
            let grad_at = |eps: f32| {
                numeric_grad(&model, &x, &labels, |m| {
                    match &mut m.layers[0] {
                        LayerNode::Conv2d(c) => &mut c.weight.value.data_mut()[idx],
                        _ => unreachable!(),
                    }
                }, eps)
            };
            // The max-pool argmax is a kink: when the ±eps interval
            // crosses a pooling-winner change, central differences are
            // meaningless (they average the two slopes). Detect kinks by
            // comparing two step sizes and skip those coordinates.
            let num_a = grad_at(1e-2);
            let num_b = grad_at(4e-3);
            let kink = (num_a - num_b).abs() > 0.02 + 0.1 * num_a.abs();
            if kink {
                continue;
            }
            prop_assert!(
                (num_b - analytic[idx]).abs() < 5e-2 + 0.15 * num_b.abs(),
                "conv grad {}: numeric {} vs analytic {}", idx, num_b, analytic[idx]
            );
        }
    }

    #[test]
    fn batchnorm_gamma_gradients(seed in 0u64..2000) {
        let mut rng = seeded_rng(seed);
        let mut model = Sequential::new(vec![
            LayerNode::Conv2d(Conv2d::new(1, 3, 3, 1, 1, &mut rng)),
            LayerNode::BatchNorm2d(BatchNorm2d::new(3)),
            LayerNode::ReLU(ReLU::new()),
            LayerNode::Flatten(fedmp_nn::Flatten::new()),
            LayerNode::Linear(Linear::new(3 * 6 * 6, 2, &mut rng)),
        ]);
        let x = Tensor::randn(&[3, 1, 6, 6], &mut rng);
        let labels = vec![0usize, 1, 0];

        model.zero_grad();
        let out = cross_entropy_loss(&model.forward(&x, true), &labels);
        model.backward(&out.grad_logits);

        let analytic: Vec<f32> = match &model.layers[1] {
            LayerNode::BatchNorm2d(b) => b.gamma.grad.data().to_vec(),
            _ => unreachable!(),
        };
        for (idx, &a) in analytic.iter().enumerate() {
            let num = numeric_grad(&model, &x, &labels, |m| {
                match &mut m.layers[1] {
                    LayerNode::BatchNorm2d(b) => &mut b.gamma.value.data_mut()[idx],
                    _ => unreachable!(),
                }
            }, 1e-2);
            prop_assert!(
                (num - a).abs() < 2e-2,
                "gamma grad {}: numeric {} vs analytic {}", idx, num, a
            );
        }
    }

    #[test]
    fn linear_bias_gradients(seed in 0u64..2000, classes in 2usize..6) {
        let mut rng = seeded_rng(seed);
        let mut model = Sequential::new(vec![
            LayerNode::Linear(Linear::new(5, classes, &mut rng)),
        ]);
        let x = Tensor::randn(&[4, 5], &mut rng);
        let labels: Vec<usize> = (0..4).map(|i| i % classes).collect();

        model.zero_grad();
        let out = cross_entropy_loss(&model.forward(&x, true), &labels);
        model.backward(&out.grad_logits);

        let analytic: Vec<f32> = match &model.layers[0] {
            LayerNode::Linear(l) => l.bias.grad.data().to_vec(),
            _ => unreachable!(),
        };
        for (idx, &a) in analytic.iter().enumerate() {
            let num = numeric_grad(&model, &x, &labels, |m| {
                match &mut m.layers[0] {
                    LayerNode::Linear(l) => &mut l.bias.value.data_mut()[idx],
                    _ => unreachable!(),
                }
            }, 1e-3);
            prop_assert!((num - a).abs() < 1e-2);
        }
    }
}

/// Central-difference gradient of the LM loss w.r.t. one scalar of
/// parameter group `pi` (in `for_each_param_mut` order), element `ei`.
fn lstm_numeric_grad(
    lm: &LstmLm,
    tokens: &[Vec<usize>],
    targets: &[usize],
    pi: usize,
    ei: usize,
    eps: f32,
) -> f32 {
    let eval = |delta: f32| {
        let mut m = lm.clone();
        let mut idx = 0usize;
        m.for_each_param_mut(&mut |p| {
            if idx == pi {
                p.value.data_mut()[ei] += delta;
            }
            idx += 1;
        });
        cross_entropy_loss(&m.forward(tokens), targets).loss
    };
    (eval(eps) - eval(-eps)) / (2.0 * eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Conv weight AND bias gradients on a pooling-free path. Unlike the
    /// max-pool stack above, conv → flatten → linear → CE is smooth in
    /// every parameter, so central differences converge without kink
    /// detection and the tolerance can be tight.
    #[test]
    fn conv_gradients_on_smooth_path(seed in 0u64..2000, ic in 1usize..3) {
        let mut rng = seeded_rng(seed);
        let mut model = Sequential::new(vec![
            LayerNode::Conv2d(Conv2d::new(ic, 3, 3, 1, 1, &mut rng)),
            LayerNode::Flatten(fedmp_nn::Flatten::new()),
            LayerNode::Linear(Linear::new(3 * 6 * 6, 3, &mut rng)),
        ]);
        let x = Tensor::randn(&[2, ic, 6, 6], &mut rng);
        let labels = vec![1usize, 2];

        model.zero_grad();
        let out = cross_entropy_loss(&model.forward(&x, true), &labels);
        model.backward(&out.grad_logits);

        let (analytic_w, analytic_b) = match &model.layers[0] {
            LayerNode::Conv2d(c) => (c.weight.grad.data().to_vec(), c.bias.grad.data().to_vec()),
            _ => unreachable!(),
        };
        let n_w = analytic_w.len();
        for idx in [0usize, n_w / 2, n_w - 1] {
            let num = numeric_grad(&model, &x, &labels, |m| {
                match &mut m.layers[0] {
                    LayerNode::Conv2d(c) => &mut c.weight.value.data_mut()[idx],
                    _ => unreachable!(),
                }
            }, 1e-2);
            prop_assert!(
                (num - analytic_w[idx]).abs() < 1e-2 + 0.05 * num.abs(),
                "conv weight grad {}: numeric {} vs analytic {}", idx, num, analytic_w[idx]
            );
        }
        for (idx, &a) in analytic_b.iter().enumerate() {
            let num = numeric_grad(&model, &x, &labels, |m| {
                match &mut m.layers[0] {
                    LayerNode::Conv2d(c) => &mut c.bias.value.data_mut()[idx],
                    _ => unreachable!(),
                }
            }, 1e-2);
            prop_assert!(
                (num - a).abs() < 1e-2 + 0.05 * num.abs(),
                "conv bias grad {}: numeric {} vs analytic {}", idx, num, a
            );
        }
    }

    /// Full BPTT gradients of the stacked-LSTM language model: one
    /// coordinate from every parameter group (embedding, both LSTMs'
    /// w_x / w_h / bias, decoder weight and bias) against central
    /// differences of the sequence CE loss.
    #[test]
    fn lstm_lm_bptt_gradients(seed in 0u64..2000) {
        const VOCAB: usize = 7;
        let mut rng = seeded_rng(seed);
        let mut lm = LstmLm::new(VOCAB, 4, 5, 2, &mut rng);

        // batch 2 × seq 3, tokens and targets derived from the seed.
        let s = seed as usize;
        let tokens: Vec<Vec<usize>> =
            (0..2).map(|b| (0..3).map(|t| (s + 3 * b + 5 * t) % VOCAB).collect()).collect();
        // Targets in the same time-major order the logits are stacked in.
        let targets: Vec<usize> = (0..6).map(|i| (s + 7 * i + 1) % VOCAB).collect();

        lm.zero_grad();
        let out = cross_entropy_loss(&lm.forward(&tokens), &targets);
        lm.backward(&out.grad_logits);

        let mut analytic: Vec<Vec<f32>> = Vec::new();
        lm.for_each_param_mut(&mut |p| analytic.push(p.grad.data().to_vec()));

        for (pi, grads) in analytic.iter().enumerate() {
            // First, middle and last coordinate of each group.
            for &ei in &[0usize, grads.len() / 2, grads.len() - 1] {
                let num = lstm_numeric_grad(&lm, &tokens, &targets, pi, ei, 1e-2);
                prop_assert!(
                    (num - grads[ei]).abs() < 2e-2 + 0.1 * num.abs(),
                    "lstm param {} elem {}: numeric {} vs analytic {}", pi, ei, num, grads[ei]
                );
            }
        }
    }
}
