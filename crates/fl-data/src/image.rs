//! In-memory labelled image dataset.

use fedmp_tensor::Tensor;

/// A dense labelled image dataset: all samples in one contiguous buffer.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    /// Flat sample buffer, `len × channels × height × width`.
    data: Vec<f32>,
    /// One label per sample.
    labels: Vec<usize>,
    /// Channels per image.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of distinct classes.
    pub num_classes: usize,
}

impl ImageDataset {
    /// Builds a dataset from a flat buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not `labels.len() × c × h × w`, or
    /// any label is out of range.
    pub fn new(
        data: Vec<f32>,
        labels: Vec<usize>,
        channels: usize,
        height: usize,
        width: usize,
        num_classes: usize,
    ) -> Self {
        let sample = channels * height * width;
        assert_eq!(data.len(), labels.len() * sample, "image dataset: buffer length mismatch");
        assert!(labels.iter().all(|&l| l < num_classes), "image dataset: label out of range");
        ImageDataset { data, labels, channels, height, width, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Elements per sample.
    pub fn sample_numel(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Raw pixels of sample `i`.
    pub fn sample(&self, i: usize) -> &[f32] {
        let s = self.sample_numel();
        &self.data[i * s..(i + 1) * s]
    }

    /// Gathers the given samples into a `[batch, c, h, w]` tensor plus
    /// label vector.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let s = self.sample_numel();
        let mut buf = Vec::with_capacity(indices.len() * s);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            buf.extend_from_slice(self.sample(i));
            labels.push(self.labels[i]);
        }
        let t = Tensor::from_vec(buf, &[indices.len(), self.channels, self.height, self.width])
            .expect("gather: internal shape error");
        (t, labels)
    }

    /// Indices of all samples with the given label.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        self.labels.iter().enumerate().filter_map(|(i, &l)| (l == class).then_some(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ImageDataset {
        // 4 samples, 1×2×2 images.
        let data: Vec<f32> = (0..16).map(|v| v as f32).collect();
        ImageDataset::new(data, vec![0, 1, 0, 1], 1, 2, 2, 2)
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.sample_numel(), 4);
        assert_eq!(d.sample(1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(d.label(2), 0);
        assert_eq!(d.indices_of_class(1), vec![1, 3]);
    }

    #[test]
    fn gather_builds_batch() {
        let d = tiny();
        let (x, y) = d.gather(&[3, 0]);
        assert_eq!(x.dims(), &[2, 1, 2, 2]);
        assert_eq!(x.data()[0..4], [12.0, 13.0, 14.0, 15.0]);
        assert_eq!(y, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn bad_length_panics() {
        let _ = ImageDataset::new(vec![0.0; 10], vec![0, 1], 1, 2, 2, 2);
    }
}
