//! Mini-batch iteration over a worker's local shard.

use crate::image::ImageDataset;
use fedmp_tensor::{shuffled_indices, Tensor};
use rand::rngs::StdRng;

/// An infinitely cycling, reshuffling mini-batch iterator over a fixed
/// index shard of a dataset. Each worker in the FL engine owns one.
pub struct BatchIter<'a> {
    dataset: &'a ImageDataset,
    shard: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    order: Vec<usize>,
    rng: StdRng,
}

impl<'a> BatchIter<'a> {
    /// Creates an iterator over `shard` (indices into `dataset`) with the
    /// given batch size and a per-worker RNG for shuffling.
    pub fn new(
        dataset: &'a ImageDataset,
        shard: Vec<usize>,
        batch_size: usize,
        rng: StdRng,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!shard.is_empty(), "empty shard");
        let n = shard.len();
        let mut it = BatchIter { dataset, shard, batch_size, cursor: 0, order: Vec::new(), rng };
        it.order = shuffled_indices(n, &mut it.rng);
        it
    }

    /// Number of samples in the shard.
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    /// Produces the next mini-batch, reshuffling at epoch boundaries.
    /// The final batch of an epoch may be smaller than `batch_size`.
    pub fn next_batch(&mut self) -> (Tensor, Vec<usize>) {
        if self.cursor >= self.order.len() {
            self.order = shuffled_indices(self.shard.len(), &mut self.rng);
            self.cursor = 0;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let picks: Vec<usize> =
            self.order[self.cursor..end].iter().map(|&i| self.shard[i]).collect();
        self.cursor = end;
        self.dataset.gather(&picks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::mnist_like;
    use fedmp_tensor::seeded_rng;

    #[test]
    fn batches_have_requested_size() {
        let (train, _) = mnist_like(0.05, 20).generate();
        let shard: Vec<usize> = (0..50).collect();
        let mut it = BatchIter::new(&train, shard, 16, seeded_rng(0));
        assert_eq!(it.shard_len(), 50);
        let (x, y) = it.next_batch();
        assert_eq!(x.dims()[0], 16);
        assert_eq!(y.len(), 16);
        // 16 + 16 + 16 + 2, then reshuffle
        it.next_batch();
        it.next_batch();
        let (x4, _) = it.next_batch();
        assert_eq!(x4.dims()[0], 2);
        let (x5, _) = it.next_batch();
        assert_eq!(x5.dims()[0], 16);
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let (train, _) = mnist_like(0.05, 21).generate();
        let shard: Vec<usize> = (10..40).collect();
        let mut it = BatchIter::new(&train, shard.clone(), 7, seeded_rng(1));
        let mut seen = Vec::new();
        let mut taken = 0;
        while taken < 30 {
            let (x, _) = it.next_batch();
            let b = x.dims()[0];
            taken += b;
            // Identify samples by their first pixel (unique with high prob).
            for r in 0..b {
                seen.push(x.data()[r * train.sample_numel()]);
            }
        }
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        seen.dedup();
        assert_eq!(seen.len(), 30, "epoch revisited a sample");
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn empty_shard_panics() {
        let (train, _) = mnist_like(0.05, 22).generate();
        let _ = BatchIter::new(&train, vec![], 4, seeded_rng(2));
    }
}
