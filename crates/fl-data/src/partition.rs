//! Federated data partitioners: IID and the paper's two non-IID schemes.

use crate::image::ImageDataset;
use fedmp_tensor::shuffled_indices;
use rand::rngs::StdRng;
use rand::Rng;

/// A federated split: one index list per worker.
pub type Partition = Vec<Vec<usize>>;

/// Uniform IID split: samples are shuffled and dealt round-robin, so
/// worker sizes differ by at most one.
pub fn iid_partition(dataset: &ImageDataset, workers: usize, rng: &mut StdRng) -> Partition {
    assert!(workers > 0, "need at least one worker");
    let order = shuffled_indices(dataset.len(), rng);
    let mut parts = vec![Vec::with_capacity(dataset.len() / workers + 1); workers];
    for (i, idx) in order.into_iter().enumerate() {
        parts[i % workers].push(idx);
    }
    parts
}

/// The paper's MNIST/CIFAR-10 non-IID scheme (§V-F): `y`% of each
/// worker's data belongs to one dominant label, the rest is uniform over
/// the other labels. Worker `n`'s dominant label is `n mod classes`.
///
/// `y` is a percentage in `[0, 100]`; `y = 0` reduces to IID.
pub fn label_skew_partition(
    dataset: &ImageDataset,
    workers: usize,
    y: u32,
    rng: &mut StdRng,
) -> Partition {
    assert!(workers > 0, "need at least one worker");
    assert!(y <= 100, "non-IID level y must be a percentage");
    if y == 0 {
        return iid_partition(dataset, workers, rng);
    }
    let classes = dataset.num_classes;
    let per_worker = dataset.len() / workers;
    let dominant_quota = (per_worker as f64 * y as f64 / 100.0).round() as usize;

    // Pools of shuffled per-class indices consumed from the back.
    let mut pools: Vec<Vec<usize>> = (0..classes)
        .map(|c| {
            let mut v = dataset.indices_of_class(c);
            for i in (1..v.len()).rev() {
                let j = rng.gen_range(0..=i);
                v.swap(i, j);
            }
            v
        })
        .collect();

    let mut parts: Partition = vec![Vec::with_capacity(per_worker); workers];
    // Dominant quotas first so every worker gets its skewed share.
    for (n, part) in parts.iter_mut().enumerate() {
        let dom = n % classes;
        for _ in 0..dominant_quota {
            if let Some(idx) = pools[dom].pop() {
                part.push(idx);
            }
        }
    }
    // Fill the rest uniformly from whatever remains, skipping each
    // worker's dominant class where possible.
    let mut leftovers: Vec<usize> = pools.into_iter().flatten().collect();
    for i in (1..leftovers.len()).rev() {
        let j = rng.gen_range(0..=i);
        leftovers.swap(i, j);
    }
    let mut cursor = 0usize;
    for part in parts.iter_mut() {
        while part.len() < per_worker && cursor < leftovers.len() {
            part.push(leftovers[cursor]);
            cursor += 1;
        }
    }
    parts
}

/// The paper's EMNIST/Tiny-ImageNet non-IID scheme (§V-F): each worker
/// **lacks `y` classes** of samples; its data is uniform over the
/// remaining classes. The missing set rotates across workers.
pub fn missing_classes_partition(
    dataset: &ImageDataset,
    workers: usize,
    y: usize,
    rng: &mut StdRng,
) -> Partition {
    assert!(workers > 0, "need at least one worker");
    let classes = dataset.num_classes;
    assert!(y < classes, "cannot remove all {classes} classes");
    if y == 0 {
        return iid_partition(dataset, workers, rng);
    }

    // Rotating missing-class windows: worker n misses classes
    // [n*y, n*y + y) mod classes.
    let missing: Vec<Vec<bool>> = (0..workers)
        .map(|n| {
            let mut m = vec![false; classes];
            for k in 0..y {
                m[(n * y + k) % classes] = true;
            }
            m
        })
        .collect();

    // Deal each class's samples round-robin over the workers that keep it.
    let mut parts: Partition = vec![Vec::new(); workers];
    // `c` is a class id used against every worker's mask, not an index
    // into one iterable.
    #[allow(clippy::needless_range_loop)]
    for c in 0..classes {
        let keepers: Vec<usize> = (0..workers).filter(|&n| !missing[n][c]).collect();
        assert!(!keepers.is_empty(), "class {c} dropped by every worker");
        let mut idxs = dataset.indices_of_class(c);
        for i in (1..idxs.len()).rev() {
            let j = rng.gen_range(0..=i);
            idxs.swap(i, j);
        }
        for (i, idx) in idxs.into_iter().enumerate() {
            parts[keepers[i % keepers.len()]].push(idx);
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::mnist_like;
    use fedmp_tensor::seeded_rng;

    fn dataset() -> ImageDataset {
        mnist_like(0.2, 11).generate().0
    }

    #[test]
    fn iid_covers_everything_once() {
        let d = dataset();
        let mut rng = seeded_rng(1);
        let parts = iid_partition(&d, 7, &mut rng);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..d.len()).collect::<Vec<_>>());
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn label_skew_concentrates_dominant_label() {
        let d = dataset();
        let mut rng = seeded_rng(2);
        // 10 workers over 10 classes: each class pool exactly covers one
        // worker's dominant quota.
        let parts = label_skew_partition(&d, 10, 80, &mut rng);
        for (n, part) in parts.iter().enumerate() {
            let dom = n % d.num_classes;
            let dom_count = part.iter().filter(|&&i| d.label(i) == dom).count();
            let frac = dom_count as f32 / part.len() as f32;
            assert!(frac > 0.6, "worker {n}: dominant fraction {frac}");
        }
    }

    #[test]
    fn label_skew_zero_is_iid() {
        let d = dataset();
        let mut rng = seeded_rng(3);
        let parts = label_skew_partition(&d, 4, 0, &mut rng);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), d.len());
    }

    #[test]
    fn label_skew_no_duplicates() {
        let d = dataset();
        let mut rng = seeded_rng(4);
        let parts = label_skew_partition(&d, 6, 50, &mut rng);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "duplicate sample assignment");
    }

    #[test]
    fn missing_classes_actually_missing() {
        let d = dataset();
        let mut rng = seeded_rng(5);
        let y = 3;
        let parts = missing_classes_partition(&d, 4, y, &mut rng);
        for (n, part) in parts.iter().enumerate() {
            let mut present = vec![false; d.num_classes];
            for &i in part {
                present[d.label(i)] = true;
            }
            let missing_count = present.iter().filter(|&&p| !p).count();
            assert!(missing_count >= y, "worker {n} misses only {missing_count} classes");
        }
        // Together the workers still cover every class.
        let mut covered = vec![false; d.num_classes];
        for part in &parts {
            for &i in part {
                covered[d.label(i)] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn partitions_are_seed_deterministic() {
        let d = dataset();
        let a = label_skew_partition(&d, 5, 30, &mut seeded_rng(9));
        let b = label_skew_partition(&d, 5, 30, &mut seeded_rng(9));
        assert_eq!(a, b);
    }
}
