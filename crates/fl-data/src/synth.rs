//! Synthetic image-classification tasks.
//!
//! Each class is defined by a **smooth spatial prototype**: a coarse
//! random grid upsampled bilinearly to the target resolution. A sample is
//! its class prototype plus (a) a small random per-sample brightness/
//! contrast jitter and (b) i.i.d. pixel noise. The signal lives in
//! low-frequency spatial structure, so a convolutional model genuinely
//! benefits from its inductive bias, accuracy improves with training,
//! label-skew hurts aggregation, and over-pruning visibly destroys
//! accuracy — the three behaviours the FedMP evaluation depends on.

use crate::image::ImageDataset;
use fedmp_tensor::{normal, seeded_rng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Specification of a synthetic image task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Dataset name (reports/logs only).
    pub name: String,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Pixel-noise standard deviation (signal amplitude is ~1).
    pub noise: f32,
    /// Class separation in (0, 1]: each class prototype is
    /// `shared + class_sep · own`, so smaller values overlap the classes
    /// and slow convergence without making the task unlearnable. This is
    /// the primary difficulty knob — convolution + pooling average out
    /// i.i.d. pixel noise, but cannot manufacture separation.
    pub class_sep: f32,
    /// Coarse prototype grid size (smaller ⇒ smoother, easier task).
    pub proto_grid: usize,
    /// Generator seed.
    pub seed: u64,
}

impl SynthSpec {
    /// Generates the train and test datasets.
    pub fn generate(&self) -> (ImageDataset, ImageDataset) {
        let mut rng = seeded_rng(self.seed);
        // Shared background structure per channel, plus a class-specific
        // deviation scaled by `class_sep`.
        let grid = self.proto_grid;
        let (h, w) = (self.height, self.width);
        let smooth_field = |rng: &mut rand::rngs::StdRng| {
            let coarse: Vec<f32> = (0..grid * grid).map(|_| normal(0.0, 1.0, rng)).collect();
            upsample_bilinear(&coarse, grid, grid, h, w)
        };
        let shared: Vec<Vec<f32>> = (0..self.channels).map(|_| smooth_field(&mut rng)).collect();
        let protos: Vec<Vec<f32>> = (0..self.classes * self.channels)
            .map(|i| {
                let own = smooth_field(&mut rng);
                shared[i % self.channels]
                    .iter()
                    .zip(own.iter())
                    .map(|(s, o)| s + self.class_sep * o)
                    .collect()
            })
            .collect();

        let train = self.render(&protos, self.train_per_class, self.seed.wrapping_add(1));
        let test = self.render(&protos, self.test_per_class, self.seed.wrapping_add(2));
        (train, test)
    }

    fn render(&self, protos: &[Vec<f32>], per_class: usize, seed: u64) -> ImageDataset {
        let mut rng = seeded_rng(seed);
        let n = per_class * self.classes;
        let sample = self.channels * self.height * self.width;
        let mut data = Vec::with_capacity(n * sample);
        let mut labels = Vec::with_capacity(n);
        for class in 0..self.classes {
            for _ in 0..per_class {
                // Per-sample jitter: brightness shift and contrast scale.
                let gain = 1.0 + normal(0.0, 0.15, &mut rng);
                let shift = normal(0.0, 0.1, &mut rng);
                for ch in 0..self.channels {
                    let proto = &protos[class * self.channels + ch];
                    for &p in proto {
                        data.push(gain * p + shift + normal(0.0, self.noise, &mut rng));
                    }
                }
                labels.push(class);
            }
        }
        // Shuffle so class blocks don't bias batching.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut shuffled = Vec::with_capacity(n * sample);
        let mut shuffled_labels = Vec::with_capacity(n);
        for &i in &order {
            shuffled.extend_from_slice(&data[i * sample..(i + 1) * sample]);
            shuffled_labels.push(labels[i]);
        }
        ImageDataset::new(
            shuffled,
            shuffled_labels,
            self.channels,
            self.height,
            self.width,
            self.classes,
        )
    }
}

/// Bilinear upsampling of a `sh × sw` grid to `dh × dw`.
fn upsample_bilinear(src: &[f32], sh: usize, sw: usize, dh: usize, dw: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(dh * dw);
    for y in 0..dh {
        let fy = y as f32 * (sh - 1) as f32 / (dh - 1).max(1) as f32;
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(sh - 1);
        let ty = fy - y0 as f32;
        for x in 0..dw {
            let fx = x as f32 * (sw - 1) as f32 / (dw - 1).max(1) as f32;
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(sw - 1);
            let tx = fx - x0 as f32;
            let v = src[y0 * sw + x0] * (1.0 - ty) * (1.0 - tx)
                + src[y0 * sw + x1] * (1.0 - ty) * tx
                + src[y1 * sw + x0] * ty * (1.0 - tx)
                + src[y1 * sw + x1] * ty * tx;
            out.push(v);
        }
    }
    out
}

/// MNIST stand-in: 1×28×28, 10 classes.
///
/// `scale` multiplies the per-class sample counts (1.0 ⇒ 200 train + 40
/// test per class, sized so the full experiment suite runs on a laptop).
/// Test counts are floored so tiny scales still evaluate on enough
/// samples for accuracy estimates to resolve small method differences.
pub fn mnist_like(scale: f32, seed: u64) -> SynthSpec {
    SynthSpec {
        name: "mnist-like".into(),
        channels: 1,
        height: 28,
        width: 28,
        classes: 10,
        train_per_class: scaled_count(200, scale),
        test_per_class: scaled_count(40, scale).max(20),
        noise: 1.0,
        class_sep: 0.45,
        proto_grid: 7,
        seed,
    }
}

/// CIFAR-10 stand-in: 3×32×32, 10 classes. Noisier and higher-frequency
/// than the MNIST stand-in, so it is a genuinely harder task.
pub fn cifar_like(scale: f32, seed: u64) -> SynthSpec {
    SynthSpec {
        name: "cifar-like".into(),
        channels: 3,
        height: 32,
        width: 32,
        classes: 10,
        train_per_class: scaled_count(200, scale),
        test_per_class: scaled_count(40, scale).max(20),
        noise: 1.2,
        class_sep: 0.4,
        proto_grid: 8,
        seed,
    }
}

/// EMNIST stand-in: 1×28×28, 62 classes.
pub fn emnist_like(scale: f32, seed: u64) -> SynthSpec {
    SynthSpec {
        name: "emnist-like".into(),
        channels: 1,
        height: 28,
        width: 28,
        classes: 62,
        train_per_class: scaled_count(40, scale),
        test_per_class: scaled_count(8, scale).max(4),
        noise: 1.0,
        class_sep: 0.9,
        proto_grid: 7,
        seed,
    }
}

/// Tiny-ImageNet stand-in: 3×64×64, 200 classes.
pub fn tiny_imagenet_like(scale: f32, seed: u64) -> SynthSpec {
    SynthSpec {
        name: "tiny-imagenet-like".into(),
        channels: 3,
        height: 64,
        width: 64,
        classes: 200,
        train_per_class: scaled_count(20, scale),
        test_per_class: scaled_count(4, scale).max(2),
        noise: 0.5,
        class_sep: 1.5,
        proto_grid: 6,
        seed,
    }
}

fn scaled_count(base: usize, scale: f32) -> usize {
    ((base as f32 * scale).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = mnist_like(0.05, 7);
        let (a, _) = spec.generate();
        let (b, _) = spec.generate();
        assert_eq!(a.sample(0), b.sample(0));
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn shapes_and_counts() {
        let spec = cifar_like(0.05, 8);
        let (train, test) = spec.generate();
        assert_eq!(train.channels, 3);
        assert_eq!(train.len(), spec.train_per_class * 10);
        assert_eq!(test.len(), spec.test_per_class * 10);
        assert_eq!(train.sample_numel(), 3 * 32 * 32);
    }

    #[test]
    fn every_class_present() {
        let (train, _) = mnist_like(0.05, 9).generate();
        for class in 0..10 {
            assert!(!train.indices_of_class(class).is_empty(), "class {class} missing");
        }
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // A nearest-class-mean classifier on raw pixels should beat chance
        // by a wide margin — otherwise the task is unlearnable noise.
        let (train, test) = mnist_like(0.1, 10).generate();
        let sample = train.sample_numel();
        let mut means = vec![vec![0.0f32; sample]; 10];
        let mut counts = [0usize; 10];
        for i in 0..train.len() {
            let l = train.label(i);
            counts[l] += 1;
            for (m, &v) in means[l].iter_mut().zip(train.sample(i).iter()) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..test.len() {
            let x = test.sample(i);
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f32 = means[a].iter().zip(x.iter()).map(|(m, v)| (m - v).powi(2)).sum();
                    let db: f32 = means[b].iter().zip(x.iter()).map(|(m, v)| (m - v).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == test.label(i) {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.5, "nearest-prototype accuracy only {acc}");
    }

    #[test]
    fn upsample_constant_grid_is_constant() {
        let up = upsample_bilinear(&[2.0; 9], 3, 3, 8, 8);
        assert!(up.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn all_presets_generate() {
        for spec in [
            mnist_like(0.02, 1),
            cifar_like(0.02, 2),
            emnist_like(0.05, 3),
            tiny_imagenet_like(0.2, 4),
        ] {
            let (train, test) = spec.generate();
            assert!(!train.is_empty());
            assert!(!test.is_empty());
        }
    }
}
