//! Synthetic language-modelling task standing in for Penn TreeBank
//! (paper §VI, Table IV).
//!
//! Tokens are drawn from a first-order Markov chain whose transition rows
//! are sparse Dirichlet-like mixtures over a Zipfian unigram
//! distribution. The result is a corpus with realistic statistics: a
//! heavy-tailed vocabulary, strong local predictability (so an LSTM can
//! reduce perplexity well below the unigram baseline) and enough entropy
//! that perplexity stays meaningfully above 1.

use fedmp_tensor::seeded_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// A token stream plus its vocabulary size.
#[derive(Debug, Clone)]
pub struct TextDataset {
    /// The token stream.
    pub tokens: Vec<usize>,
    /// Vocabulary size.
    pub vocab: usize,
}

/// One LM training batch: inputs `[batch][seq]` and time-major targets
/// (matching the stacking order of `LstmLm::forward` logits).
#[derive(Debug, Clone)]
pub struct TextBatch {
    /// Input token grid, `batch` rows of `seq` tokens.
    pub inputs: Vec<Vec<usize>>,
    /// Next-token targets in time-major order (`seq × batch` entries).
    pub targets: Vec<usize>,
}

impl TextDataset {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Splits the stream into `batch`-way parallel sequences of length
    /// `seq` (the standard truncated-BPTT batching). Leftover tokens are
    /// dropped.
    pub fn batches(&self, batch: usize, seq: usize) -> Vec<TextBatch> {
        assert!(batch > 0 && seq > 0, "batch and seq must be positive");
        // Split the stream into `batch` contiguous lanes.
        let lane = self.tokens.len() / batch;
        if lane < seq + 1 {
            return Vec::new();
        }
        let n_batches = (lane - 1) / seq;
        let mut out = Vec::with_capacity(n_batches);
        for b in 0..n_batches {
            let mut inputs = Vec::with_capacity(batch);
            let mut targets = vec![0usize; seq * batch];
            for r in 0..batch {
                let base = r * lane + b * seq;
                inputs.push(self.tokens[base..base + seq].to_vec());
                for t in 0..seq {
                    targets[t * batch + r] = self.tokens[base + t + 1];
                }
            }
            out.push(TextBatch { inputs, targets });
        }
        out
    }

    /// Splits into train/test streams at `ratio` (e.g. 0.9).
    pub fn split(&self, ratio: f32) -> (TextDataset, TextDataset) {
        let cut = (self.tokens.len() as f32 * ratio) as usize;
        (
            TextDataset { tokens: self.tokens[..cut].to_vec(), vocab: self.vocab },
            TextDataset { tokens: self.tokens[cut..].to_vec(), vocab: self.vocab },
        )
    }
}

/// Samples from a Zipf(1.0) distribution over `0..vocab` via inverse CDF.
fn zipf_sample(cdf: &[f32], rng: &mut StdRng) -> usize {
    let u: f32 = rng.gen();
    match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf")) {
        Ok(i) | Err(i) => i.min(cdf.len() - 1),
    }
}

/// Generates a PTB-like corpus: `n_tokens` tokens over a `vocab`-word
/// Zipfian vocabulary with Markov structure.
pub fn ptb_like(vocab: usize, n_tokens: usize, seed: u64) -> TextDataset {
    assert!(vocab >= 4, "vocab too small");
    let mut rng = seeded_rng(seed);

    // Zipfian unigram CDF.
    let weights: Vec<f32> = (1..=vocab).map(|r| 1.0 / r as f32).collect();
    let total = fedmp_tensor::parallel::sum_f32(weights.iter().copied());
    let mut cdf = Vec::with_capacity(vocab);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    // Sparse Markov successors: each token has a handful of preferred
    // successors sampled from the unigram distribution.
    let branch = 4usize;
    let successors: Vec<Vec<usize>> =
        (0..vocab).map(|_| (0..branch).map(|_| zipf_sample(&cdf, &mut rng)).collect()).collect();

    let mut tokens = Vec::with_capacity(n_tokens);
    let mut cur = zipf_sample(&cdf, &mut rng);
    for _ in 0..n_tokens {
        tokens.push(cur);
        // 85% follow the Markov structure, 15% back off to unigram noise.
        cur = if rng.gen::<f32>() < 0.85 {
            successors[cur][rng.gen_range(0..branch)]
        } else {
            zipf_sample(&cdf, &mut rng)
        };
    }
    TextDataset { tokens, vocab }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_in_range() {
        let a = ptb_like(50, 2000, 3);
        let b = ptb_like(50, 2000, 3);
        assert_eq!(a.tokens, b.tokens);
        assert!(a.tokens.iter().all(|&t| t < 50));
        assert_eq!(a.len(), 2000);
    }

    #[test]
    fn corpus_has_markov_structure() {
        // Bigram conditional entropy must be well below unigram entropy.
        let d = ptb_like(30, 50_000, 4);
        let mut uni = vec![0f64; 30];
        let mut bi = vec![vec![0f64; 30]; 30];
        for w in d.tokens.windows(2) {
            uni[w[0]] += 1.0;
            bi[w[0]][w[1]] += 1.0;
        }
        let n: f64 = uni.iter().sum();
        let h_uni: f64 = uni
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / n;
                -p * p.log2()
            })
            .sum();
        let mut h_bi = 0.0f64;
        for (ctx, row) in bi.iter().enumerate() {
            let ctx_n: f64 = row.iter().sum();
            if ctx_n == 0.0 {
                continue;
            }
            let p_ctx = uni[ctx] / n;
            for &c in row.iter().filter(|&&c| c > 0.0) {
                let p = c / ctx_n;
                h_bi += p_ctx * (-p * p.log2());
            }
        }
        assert!(h_bi < h_uni * 0.8, "H(bigram)={h_bi:.2} vs H(unigram)={h_uni:.2}");
    }

    #[test]
    fn batching_shapes_and_targets() {
        let d = TextDataset { tokens: (0..101).map(|i| i % 7).collect(), vocab: 7 };
        let batches = d.batches(2, 10);
        // lane = 50, (50-1)/10 = 4 batches
        assert_eq!(batches.len(), 4);
        let b0 = &batches[0];
        assert_eq!(b0.inputs.len(), 2);
        assert_eq!(b0.inputs[0].len(), 10);
        assert_eq!(b0.targets.len(), 20);
        // Target of (row r, step t) is the next token of that lane.
        assert_eq!(b0.targets[0], d.tokens[1]); // t=0, r=0
        assert_eq!(b0.targets[1], d.tokens[51]); // t=0, r=1
    }

    #[test]
    fn split_preserves_total() {
        let d = ptb_like(20, 1000, 5);
        let (tr, te) = d.split(0.9);
        assert_eq!(tr.len() + te.len(), 1000);
        assert_eq!(tr.vocab, 20);
    }

    #[test]
    fn too_short_stream_yields_no_batches() {
        let d = TextDataset { tokens: vec![1, 2, 3], vocab: 5 };
        assert!(d.batches(2, 10).is_empty());
    }
}
