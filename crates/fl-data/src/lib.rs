//! # fedmp-data
//!
//! Seeded synthetic datasets and federated partitioners for the FedMP
//! reproduction.
//!
//! The paper evaluates on MNIST, CIFAR-10, EMNIST, Tiny-ImageNet and Penn
//! TreeBank; none are available offline, so this crate generates
//! **learnable synthetic stand-ins with identical tensor shapes**:
//!
//! * Image tasks use class-conditional smooth prototypes plus noise —
//!   a CNN genuinely has to learn spatial features, accuracy rises with
//!   training, and over-pruning demonstrably destroys it.
//! * The language task uses a Markov chain with a Zipfian vocabulary, so
//!   perplexity behaves like on natural text.
//!
//! Federated splits implement the paper's exact non-IID definitions
//! (§V-F): label-skew (`y%` of a worker's data from one dominant label)
//! for MNIST/CIFAR-10-like tasks, and missing-classes (each worker lacks
//! `y` classes) for EMNIST/Tiny-ImageNet-like tasks.

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
mod image;
mod loader;
mod partition;
mod synth;
mod text;

pub use image::ImageDataset;
pub use loader::BatchIter;
pub use partition::{iid_partition, label_skew_partition, missing_classes_partition, Partition};
pub use synth::{cifar_like, emnist_like, mnist_like, tiny_imagenet_like, SynthSpec};
pub use text::{ptb_like, TextBatch, TextDataset};
