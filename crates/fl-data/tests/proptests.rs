//! Property tests of the data crate: every partitioner must assign each
//! sample at most once and cover the dataset reasonably.

use fedmp_data::{
    iid_partition, label_skew_partition, missing_classes_partition, mnist_like, ptb_like,
};
use fedmp_tensor::seeded_rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn iid_partition_is_exact_cover(workers in 1usize..12, seed in 0u64..500) {
        let (train, _) = mnist_like(0.1, seed).generate();
        let parts = iid_partition(&train, workers, &mut seeded_rng(seed));
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..train.len()).collect::<Vec<_>>());
    }

    #[test]
    fn label_skew_never_duplicates(workers in 2usize..10, y in 0u32..90, seed in 0u64..500) {
        let (train, _) = mnist_like(0.1, seed).generate();
        let parts = label_skew_partition(&train, workers, y, &mut seeded_rng(seed));
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n, "duplicate assignment");
        prop_assert!(n <= train.len());
        // Coverage stays high: at most `workers` stragglers dropped by
        // integer division.
        prop_assert!(n + workers >= train.len());
    }

    #[test]
    fn missing_classes_cover_union(workers in 2usize..8, y in 1usize..5, seed in 0u64..500) {
        let (train, _) = mnist_like(0.1, seed).generate();
        let parts = missing_classes_partition(&train, workers, y, &mut seeded_rng(seed));
        let mut covered = vec![false; train.num_classes];
        let mut all: Vec<usize> = Vec::new();
        for part in &parts {
            for &i in part {
                covered[train.label(i)] = true;
                all.push(i);
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "some class lost entirely");
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n, "duplicate assignment");
        prop_assert_eq!(n, train.len(), "missing-classes must cover every sample");
    }

    #[test]
    fn text_batches_are_shape_consistent(batch in 1usize..6, seq in 2usize..16, seed in 0u64..200) {
        let corpus = ptb_like(25, 4000, seed);
        for b in corpus.batches(batch, seq) {
            prop_assert_eq!(b.inputs.len(), batch);
            prop_assert!(b.inputs.iter().all(|row| row.len() == seq));
            prop_assert_eq!(b.targets.len(), batch * seq);
            prop_assert!(b.targets.iter().all(|&t| t < 25));
        }
    }
}
