//! Panic-shaped tokens on the engine hot path. Marked lines fire
//! `no-panic`; the total variants and the test module do not.

pub fn collect(rx: &Receiver<f32>) -> f32 {
    let first = rx.recv().unwrap(); // line 5: unwrap
    let second = rx.recv().expect("worker alive"); // line 6: expect
    if first.is_nan() {
        panic!("nan loss"); // line 8: panic!
    }
    first + second
}

pub fn fallback(v: Option<usize>) -> usize {
    v.unwrap_or_default() + v.unwrap_or(1) // total: exempt
}

pub fn later() {
    todo!() // line 18: todo!
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::fallback(None);
        Option::<u8>::None.unwrap(); // tests may panic
    }
}
