//! Ad-hoc float reductions that bypass the fixed-order funnel. The
//! marked lines must fire `float-reduction`; the max-fold and the
//! integer fold must not.

pub fn mean(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() / xs.len() as f32 // line 6: typed sum
}

pub fn ascribed(xs: &[f64]) -> f64 {
    let total: f64 = xs.iter().sum(); // line 10: ascribed accumulator
    total
}

pub fn folded(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |acc, v| acc + v) // line 15: float-seeded fold
}

pub fn peak(xs: &[f32]) -> f32 {
    xs.iter().map(|v| v.abs()).fold(0.0f32, f32::max) // order-insensitive: exempt
}

pub fn count(xs: &[f32]) -> usize {
    xs.iter().fold(0usize, |n, _| n + 1) // integer fold: exempt
}
