//! Dead escapes: inline directives whose excused code is gone, next to
//! a live one the audit must leave alone.

// fedmp-analysis: allow(determinism) -- the env read this excused is long gone
pub fn settings() -> u32 {
    7
}

pub fn lookup() -> u32 { 9 } // fedmp-analysis: allow(no-panic) -- nothing here can panic anymore

pub fn leak() -> bool {
    // fedmp-analysis: allow(determinism) -- still earns its keep
    std::env::var("X").is_ok()
}
