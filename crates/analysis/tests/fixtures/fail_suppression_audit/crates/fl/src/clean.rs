//! Determinism-clean on purpose: the config `allow` entry covering
//! this file excuses nothing, which is exactly what the audit flags.

pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
