//! Seeded channel-protocol violations: one scope breaking all four
//! rules, and one scope whose violation carries a reasoned escape.

pub fn run(n: usize) -> Result<(), E> {
    std::thread::scope(|scope| {
        let (up_tx, up_rx) = bounded::<u32>(4);
        let (cmd_tx, cmd_rx) = bounded::<u32>(1);
        let mut jobs: Vec<Sender<u32>> = Vec::new();
        for w in 0..n {
            let (job_tx, job_rx) = bounded::<u32>(2);
            jobs.push(job_tx);
            let utx = up_tx.clone();
            scope.spawn(move || worker(w, job_rx, utx));
        }
        drop(up_tx);
        let first = up_rx.recv()?;
        let cmd = cmd_rx.recv();
        handle(first, cmd)
    })
}

pub fn excused(n: usize) {
    std::thread::scope(|scope| {
        // fedmp-analysis: allow(channel-protocol) -- fixture proves the reasoned escape works
        let (tx, rx) = bounded::<u32>(n.max(1));
        scope.spawn(move || feed(tx));
        let v = rx.recv();
        drop(v);
    });
}
