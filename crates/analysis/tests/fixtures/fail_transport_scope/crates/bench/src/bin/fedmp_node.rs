//! The node binary sits in both new scopes: ambient input needs a
//! reasoned escape, and failure paths must exit typed.

pub fn rounds_flag() -> usize {
    let arg = std::env::args().nth(1); // fires determinism: ambient input
    arg.and_then(|a| a.parse().ok()).expect("usage: fedmp-node <rounds>") // fires no-panic
}
