//! Scoped-file violation: the framing decoder must fail typed, never
//! panic — a panicking decoder turns wire corruption into a crash
//! instead of a retransmit.

pub fn decode_len(header: &[u8]) -> usize {
    let bytes: [u8; 4] = header[..4].try_into().unwrap(); // fires no-panic
    u32::from_le_bytes(bytes) as usize
}
