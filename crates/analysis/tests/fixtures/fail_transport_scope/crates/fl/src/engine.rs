//! Outside the file-granular transport scope: the same panic shape
//! stays silent here, proving the scope entry really is one file.

pub fn decode_len(header: &[u8]) -> usize {
    let bytes: [u8; 4] = header[..4].try_into().unwrap(); // out of scope: silent
    u32::from_le_bytes(bytes) as usize
}
