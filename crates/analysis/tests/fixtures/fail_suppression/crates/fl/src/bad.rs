//! Suppression misuse. A reason-less directive is malformed AND inert
//! (the determinism finding underneath still fires); an unknown lint
//! name is a typo that would silently suppress nothing.

// fedmp-analysis: allow(determinism)
pub fn no_reason() -> String {
    std::env::var("HOME").unwrap_or_default() // line 7: still fires — the allow above has no reason
}

// fedmp-analysis: allow(determinsim) -- misspelled lint name; flagged on line 11 where it attaches
pub fn typo() -> String {
    std::env::var("USER").unwrap_or_default() // line 12: still fires
}
