//! Outside the determinism scope: the same tokens must NOT fire here.
use std::collections::HashMap;

pub fn fine() -> HashMap<String, usize> {
    HashMap::new()
}
