//! Deterministic-crate code that observes things the seed does not
//! control. Every marked line must fire the `determinism` lint.

use std::collections::HashMap; // line 4: hasher-ordered container

pub fn aggregate(updates: &HashMap<usize, f32>) -> f32 {
    let started = std::time::Instant::now(); // line 7: wall clock
    let mut total = 0.0;
    for (_, v) in updates.iter() {
        total += v;
    }
    let _elapsed = started.elapsed();
    total
}

pub fn configured_workers() -> usize {
    std::env::var("WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(4) // line 17: env read
}

fn outside_scope_sibling_is_not_scanned() {}
