//! In sync with docs/SCHEMA.md, including a shared heading for the
//! fault pair.

pub enum TraceEvent {
    RoundStart,
    FaultInjected,
    FaultRecovered,
}

impl TraceEvent {
    pub const KINDS: [&'static str; 3] = ["RoundStart", "FaultInjected", "FaultRecovered"];
}
