//! Allowlisted unsafe with proper SAFETY discipline.

pub struct Queue(*mut f32);

// SAFETY: the queue hands out disjoint regions, each claimed by exactly
// one worker (fixture mirror of the band scheduler argument).
unsafe impl Sync for Queue {}

pub fn write(p: *mut f32) {
    // SAFETY: caller guarantees `p` is valid for writes.
    unsafe { *p = 1.0 }
}
