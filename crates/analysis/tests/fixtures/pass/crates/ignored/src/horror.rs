//! Under a skip prefix: nothing here is ever scanned.
use std::collections::HashMap;

pub fn chaos(m: &HashMap<u8, f32>) -> f32 {
    let t = std::time::Instant::now();
    unsafe { std::hint::unreachable_unchecked() }
}
