//! Float-iterator helpers used safely: order-free folds, and
//! collect-then-funnel through the sanctioned fixed-order reducer.

pub fn deltas(xs: &[f32]) -> impl Iterator<Item = f32> + '_ {
    xs.iter().copied()
}

pub fn peak(xs: &[f32]) -> f32 {
    deltas(xs).fold(f32::MIN, f32::max)
}

pub fn total(xs: &[f32]) -> f32 {
    let vals: Vec<f32> = deltas(xs).collect();
    sum_f32(vals.iter().copied())
}
