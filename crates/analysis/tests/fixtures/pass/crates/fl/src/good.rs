//! Clean code under every configured lint: ordered containers, funneled
//! reductions, reasoned suppressions, and panics confined to tests.

use std::collections::BTreeMap;

pub fn aggregate(updates: &BTreeMap<usize, f32>) -> f32 {
    sum_f32(updates.values().copied())
}

pub fn peak(xs: &[f32]) -> f32 {
    xs.iter().map(|v| v.abs()).fold(0.0f32, f32::max)
}

pub fn guarded(lock: &std::sync::Mutex<f32>) -> f32 {
    // fedmp-analysis: allow(no-panic) -- lock poisoning means a sibling
    // thread already panicked; propagating is the only sound option.
    *lock.lock().unwrap()
}

pub fn also_suppressed() -> f32 {
    // Strings and comments mentioning HashMap or .unwrap() never fire.
    let _label = "HashMap-backed (historical)";
    0.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        use std::collections::HashMap;
        let m: HashMap<u8, f32> = HashMap::new();
        let s: f32 = m.values().sum();
        assert!(s.abs() < f32::EPSILON);
        std::env::var("HOME").unwrap_or_default();
    }
}
