//! File-level allowlisted for `determinism` (see analysis.toml): env
//! reads are this module's documented purpose.

pub fn trace_dir() -> Option<String> {
    std::env::var("TRACE_DIR").ok()
}
