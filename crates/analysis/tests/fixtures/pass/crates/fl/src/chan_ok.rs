//! The sanctioned scoped-channel shape: fallible closure for `?`,
//! every endpoint dropped before the scope ends.

pub fn run(n: usize) -> Result<(), E> {
    let mut result = Ok(());
    std::thread::scope(|scope| {
        let (up_tx, up_rx) = bounded::<u32>(4);
        let mut downlinks: Vec<Sender<u32>> = Vec::new();
        for w in 0..n {
            let (down_tx, down_rx) = bounded::<u32>(2);
            downlinks.push(down_tx);
            let utx = up_tx.clone();
            scope.spawn(move || worker(w, down_rx, utx));
        }
        drop(up_tx);
        result = (|| -> Result<(), E> {
            let v = up_rx.recv()?;
            handle(v)
        })();
        drop(downlinks);
        drop(up_rx);
    });
    result
}
