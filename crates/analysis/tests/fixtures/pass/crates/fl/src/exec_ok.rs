//! Executor-pure closures: worker-derived RNG, locally-bound state,
//! emission kept on the caller side of the fan-out.

pub fn run(items: Vec<usize>, seed: u64) -> Vec<f32> {
    let out = ordered_map(items, |i, x| {
        let mut rng = worker_rng(seed, i, x);
        let mut local = Vec::new();
        local.push(rng.next_u32() as f32);
        local[0]
    });
    emit_round_end(out.len());
    out
}
