//! Seeded reduction-escape violations: float-iterator helpers
//! `.sum()`-ed at call sites, directly and through adapters.

pub fn deltas(xs: &[f32]) -> impl Iterator<Item = f32> + '_ {
    xs.iter().copied()
}

pub fn total(xs: &[f32]) -> f32 {
    deltas(xs).sum::<f32>()
}

pub fn scaled(xs: &[f32]) -> f32 {
    deltas(xs)
        .map(|v| v * 2.0)
        .sum()
}

pub fn peak(xs: &[f32]) -> f32 {
    deltas(xs).fold(f32::MIN, f32::max)
}

pub fn excused(xs: &[f32]) -> f32 {
    // fedmp-analysis: allow(reduction-escape) -- fixture proves the reasoned escape works
    deltas(xs).product::<f32>()
}
