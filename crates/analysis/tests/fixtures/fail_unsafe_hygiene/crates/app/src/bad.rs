//! `unsafe` outside the allowlist: must fire even with a SAFETY note,
//! and even inside #[cfg(test)].

// SAFETY: a comment does not make this file allowlisted.
pub fn sneak(p: *mut f32) {
    unsafe { *p = 0.0 } // line 6: unsafe outside allowlisted modules
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = 0u8;
        let _ = unsafe { std::ptr::read(&x) }; // line 14: tests are not exempt
    }
}
