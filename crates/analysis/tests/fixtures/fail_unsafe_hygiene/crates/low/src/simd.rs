//! Allowlisted SIMD-microkernel-style module: `#[target_feature]` fns
//! are safe, but intrinsic pointer loads stay `unsafe` and must carry a
//! `// SAFETY:` note just like the scheduler's blocks.

#[target_feature(enable = "avx2")]
pub fn documented_load(s: &[f32]) -> f32 {
    let chunk = &s[..8];
    // SAFETY: `chunk` is a checked 8-element subslice (fixture).
    unsafe { core::ptr::read_unaligned(chunk.as_ptr()) }
}

#[target_feature(enable = "avx2")]
pub fn undocumented_load(s: &[f32]) -> f32 {
    let chunk = &s[..8];
    unsafe { core::ptr::read_unaligned(chunk.as_ptr()) } // line 15: allowlisted, but no SAFETY comment
}
