//! The allowlisted module: `unsafe` is permitted, but only with a
//! `// SAFETY:` comment on the same line or directly above.

pub fn documented(p: *mut f32) {
    // SAFETY: caller guarantees `p` is valid for writes (fixture).
    unsafe { *p = 1.0 }
}

pub fn undocumented(p: *mut f32) {
    unsafe { *p = 2.0 } // line 10: allowlisted, but no SAFETY comment
}
