//! Seeded executor-purity violations: everything an executor closure
//! must not do, plus one reasoned escape.

fn note(round: usize) {
    emit_round_end(round);
}

pub fn run(items: Vec<usize>, agent: &mut Bandit, rng: &mut R, acc: &mut Vec<f32>) {
    let out = ordered_map(items, |i, x| {
        let arm = agent.select(x);
        let n = rng.next_u32();
        note(i);
        acc.push(x as f32);
        arm + n as usize + x
    });
    drop(out);
}

pub fn spawned(scope: &S) {
    scope.spawn(move || {
        fedmp_obs::emit(|| event());
    });
}

pub fn excused(items: Vec<usize>) -> Vec<usize> {
    // fedmp-analysis: allow(executor-purity) -- fixture proves the reasoned escape works
    ordered_map(items, |i, _x| { note(i); i })
}
