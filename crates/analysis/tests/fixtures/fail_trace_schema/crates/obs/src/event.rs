//! Drifted in both directions against docs/SCHEMA.md: `RoundEnd` is
//! undocumented, and the doc describes a `Ghost` kind that no longer
//! exists.

pub enum TraceEvent {
    RoundStart,
    Aggregate,
    RoundEnd,
}

impl TraceEvent {
    pub const KINDS: [&'static str; 3] = [
        "RoundStart",
        "Aggregate",
        "RoundEnd",
    ];
}
