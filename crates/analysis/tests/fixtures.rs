//! Fixture-corpus tests: every lint must fire on its `fail_*` tree at
//! the expected file:line positions, and the `pass` tree — which
//! exercises suppressions, allowlists, SAFETY comments and
//! test-region exemptions — must come back clean.

use std::path::{Path, PathBuf};

use fedmp_analysis::Outcome;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn run(name: &str) -> Outcome {
    fedmp_analysis::check_root(&fixture(name))
        .unwrap_or_else(|e| panic!("fixture {name} failed to analyze: {e}"))
}

/// `(file, line, lint)` triples, sorted, for compact assertions.
fn keys(outcome: &Outcome) -> Vec<(String, usize, String)> {
    outcome.diagnostics.iter().map(|d| (d.file.clone(), d.line, d.lint.clone())).collect()
}

#[test]
fn determinism_fixture_fires_on_every_leak() {
    let out = run("fail_determinism");
    let keys = keys(&out);
    assert!(
        keys.iter().all(|(f, _, l)| f == "crates/fl/src/bad.rs" && l == "determinism"),
        "{keys:?}"
    );
    let mut lines: Vec<usize> = keys.iter().map(|(_, n, _)| *n).collect();
    lines.dedup();
    assert_eq!(lines, vec![4, 6, 7, 17], "HashMap use/decl, clock, env read");
}

#[test]
fn float_reduction_fixture_flags_adhoc_sums_only() {
    let out = run("fail_float_reduction");
    let keys = keys(&out);
    assert_eq!(
        keys,
        vec![
            ("crates/num/src/bad.rs".to_string(), 6, "float-reduction".to_string()),
            ("crates/num/src/bad.rs".to_string(), 10, "float-reduction".to_string()),
            ("crates/num/src/bad.rs".to_string(), 15, "float-reduction".to_string()),
        ],
        "typed sum, ascribed sum, float fold — max-fold and integer fold exempt"
    );
}

#[test]
fn unsafe_hygiene_fixture_covers_both_failure_modes() {
    let out = run("fail_unsafe_hygiene");
    let keys = keys(&out);
    assert_eq!(
        keys,
        vec![
            ("crates/app/src/bad.rs".to_string(), 6, "unsafe-hygiene".to_string()),
            ("crates/app/src/bad.rs".to_string(), 14, "unsafe-hygiene".to_string()),
            ("crates/low/src/sched.rs".to_string(), 10, "unsafe-hygiene".to_string()),
            ("crates/low/src/simd.rs".to_string(), 15, "unsafe-hygiene".to_string()),
        ],
        "outside allowlist (incl. tests), allowlisted-but-undocumented, and an un-commented SIMD intrinsic load"
    );
}

#[test]
fn no_panic_fixture_flags_panic_shapes_not_total_variants() {
    let out = run("fail_no_panic");
    let keys = keys(&out);
    assert!(
        keys.iter().all(|(f, _, l)| f == "crates/fl/src/engines/bad.rs" && l == "no-panic"),
        "{keys:?}"
    );
    let lines: Vec<usize> = keys.iter().map(|(_, n, _)| *n).collect();
    assert_eq!(lines, vec![5, 6, 8, 18], "unwrap, expect, panic!, todo!");
}

#[test]
fn trace_schema_fixture_reports_drift_both_ways() {
    let out = run("fail_trace_schema");
    assert_eq!(out.diagnostics.len(), 2, "{:?}", out.diagnostics);
    let undocumented = &out.diagnostics[0];
    assert_eq!(undocumented.file, "crates/obs/src/event.rs");
    assert_eq!(undocumented.line, 12, "points at the KINDS array");
    assert!(undocumented.message.contains("`RoundEnd`"));
    let ghost = &out.diagnostics[1];
    assert_eq!(ghost.file, "docs/SCHEMA.md");
    assert_eq!(ghost.line, 11);
    assert!(ghost.message.contains("`Ghost`"));
}

#[test]
fn suppression_fixture_flags_reasonless_and_unknown_directives() {
    let out = run("fail_suppression");
    let keys = keys(&out);
    assert_eq!(
        keys,
        vec![
            ("crates/fl/src/bad.rs".to_string(), 5, "suppression".to_string()),
            ("crates/fl/src/bad.rs".to_string(), 7, "determinism".to_string()),
            ("crates/fl/src/bad.rs".to_string(), 11, "suppression".to_string()),
            ("crates/fl/src/bad.rs".to_string(), 12, "determinism".to_string()),
        ],
        "reason-less directives are reported AND inert; unknown lint names are typos"
    );
}

#[test]
fn executor_purity_fixture_flags_every_impurity() {
    let out = run("fail_executor_purity");
    let keys = keys(&out);
    assert!(
        keys.iter().all(|(f, _, l)| f == "crates/fl/src/bad.rs" && l == "executor-purity"),
        "{keys:?}"
    );
    let lines: Vec<usize> = keys.iter().map(|(_, n, _)| *n).collect();
    assert_eq!(
        lines,
        vec![10, 11, 12, 13, 21],
        "bandit call, rng capture, transitive emitter, accumulator push, direct emission — \
         the reasoned escape at the bottom stays silent"
    );
}

#[test]
fn channel_protocol_fixture_breaks_all_four_rules() {
    let out = run("fail_channel_protocol");
    let keys = keys(&out);
    assert!(
        keys.iter().all(|(f, _, l)| f == "crates/fl/src/runtime.rs" && l == "channel-protocol"),
        "{keys:?}"
    );
    let lines: Vec<usize> = keys.iter().map(|(_, n, _)| *n).collect();
    assert_eq!(
        lines,
        vec![6, 10, 16, 17],
        "undropped receiver, undropped sender container, top-level `?`, self-deadlock recv — \
         the escaped scope below stays silent"
    );
}

#[test]
fn reduction_escape_fixture_flags_laundered_sums() {
    let out = run("fail_reduction_escape");
    let keys = keys(&out);
    assert_eq!(
        keys,
        vec![
            ("crates/num/src/bad.rs".to_string(), 9, "reduction-escape".to_string()),
            ("crates/num/src/bad.rs".to_string(), 13, "reduction-escape".to_string()),
        ],
        "direct sum and adapter-chained sum fire; order-free fold and the escape stay silent"
    );
}

#[test]
fn suppression_audit_fixture_finds_dead_escapes() {
    let out = run("fail_suppression_audit");
    let keys = keys(&out);
    assert_eq!(
        keys,
        vec![
            ("analysis.toml".to_string(), 0, "suppression-audit".to_string()),
            ("crates/fl/src/bad.rs".to_string(), 4, "suppression-audit".to_string()),
            ("crates/fl/src/bad.rs".to_string(), 9, "suppression-audit".to_string()),
        ],
        "dead config allow entry and both dead inline directives; the live directive survives"
    );
}

#[test]
fn transport_scope_fixture_fires_in_both_new_scopes() {
    // Mirrors the real workspace's file-granular scope additions for
    // the socket transport: `fl/src/transport.rs` and the node binary
    // under no-panic, the node binary under determinism. The same
    // panic shape in `fl/src/engine.rs` proves scoping stays exact.
    let out = run("fail_transport_scope");
    let keys = keys(&out);
    assert_eq!(
        keys,
        vec![
            ("crates/bench/src/bin/fedmp_node.rs".to_string(), 5, "determinism".to_string()),
            ("crates/bench/src/bin/fedmp_node.rs".to_string(), 6, "no-panic".to_string()),
            ("crates/fl/src/transport.rs".to_string(), 6, "no-panic".to_string()),
        ],
        "ambient args + panic-shaped exit in the node binary, panicking decoder in transport; \
         the out-of-scope engine copy stays silent"
    );
}

#[test]
fn pass_fixture_is_clean() {
    let out = run("pass");
    assert!(out.is_clean(), "{:?}", out.diagnostics);
    assert!(out.files_scanned >= 4, "skip list must not swallow the tree");
}

#[test]
fn every_lint_has_a_fixture_that_fires_it() {
    // Guards the corpus itself: adding a lint without a failing
    // fixture leaves it untested.
    let by_fixture = [
        ("fail_determinism", "determinism"),
        ("fail_float_reduction", "float-reduction"),
        ("fail_unsafe_hygiene", "unsafe-hygiene"),
        ("fail_no_panic", "no-panic"),
        ("fail_trace_schema", "trace-schema"),
        ("fail_suppression", "suppression"),
        ("fail_executor_purity", "executor-purity"),
        ("fail_channel_protocol", "channel-protocol"),
        ("fail_reduction_escape", "reduction-escape"),
        ("fail_suppression_audit", "suppression-audit"),
    ];
    for (fixture, lint) in by_fixture {
        let out = run(fixture);
        assert!(
            out.diagnostics.iter().any(|d| d.lint == lint),
            "{fixture} produced no `{lint}` finding"
        );
    }
}
