//! Diagnostic records and the two output renderers (human, JSON).

use serde::Serialize;

/// One finding: a file, a line, the lint that fired, and why.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-indexed line number (0 for file-level findings).
    pub line: usize,
    /// The lint name, e.g. `determinism`.
    pub lint: String,
    /// Human-readable explanation including the remedy.
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<String>,
        line: usize,
        lint: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self { file: file.into(), line, lint: lint.into(), message: message.into() }
    }

    /// `path:line: [lint] message` — the `path:line` prefix is what
    /// terminals and editors make clickable.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Stable ordering so output (and the JSON artifact) is reproducible:
/// by file, then line, then lint name.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.message).cmp(&(&b.file, b.line, &b.lint, &b.message))
    });
}

/// The machine-readable report emitted by `check --json`. Owned fields
/// because the in-tree serde derive supports no generic parameters.
#[derive(Debug, Serialize)]
pub struct Report {
    /// `"clean"` or `"violations"`.
    pub status: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The lints that ran (i.e. were configured), sorted.
    pub lints: Vec<String>,
    pub diagnostics: Vec<Diagnostic>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_clickable_prefix() {
        let d = Diagnostic::new("crates/fl/src/lm.rs", 42, "determinism", "no HashMap here");
        assert_eq!(d.render(), "crates/fl/src/lm.rs:42: [determinism] no HashMap here");
    }

    #[test]
    fn sort_is_by_file_then_line_then_lint() {
        let mut v = vec![
            Diagnostic::new("b.rs", 1, "x", "m"),
            Diagnostic::new("a.rs", 9, "x", "m"),
            Diagnostic::new("a.rs", 2, "z", "m"),
            Diagnostic::new("a.rs", 2, "a", "m"),
        ];
        sort(&mut v);
        assert_eq!(
            v.iter().map(|d| (d.file.as_str(), d.line, d.lint.as_str())).collect::<Vec<_>>(),
            vec![("a.rs", 2, "a"), ("a.rs", 2, "z"), ("a.rs", 9, "x"), ("b.rs", 1, "x")]
        );
    }
}
