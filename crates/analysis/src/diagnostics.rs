//! Diagnostic records, the finding sink (which arbitrates inline
//! suppressions and remembers which ones fired), and the output
//! renderers (human, JSON, SARIF).

use std::collections::BTreeSet;

use serde::Serialize;

use crate::scanner::SourceFile;

/// One finding: a file, a line, the lint that fired, and why.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-indexed line number (0 for file-level findings).
    pub line: usize,
    /// The lint name, e.g. `determinism`.
    pub lint: String,
    /// Human-readable explanation including the remedy.
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<String>,
        line: usize,
        lint: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self { file: file.into(), line, lint: lint.into(), message: message.into() }
    }

    /// `path:line: [lint] message` — the `path:line` prefix is what
    /// terminals and editors make clickable.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Where lints report candidate findings. The sink — not each lint —
/// decides whether an inline `allow(...)` covers the line: suppressed
/// candidates are recorded in [`Sink::used`] (keyed by the directive's
/// own line) instead of becoming diagnostics, which is exactly the
/// bookkeeping the suppression-audit lint diffs against to find dead
/// directives.
#[derive(Debug, Default)]
pub struct Sink {
    /// Findings that survived suppression.
    pub findings: Vec<Diagnostic>,
    /// `(file, directive line, lint)` for every suppression that
    /// actually absorbed a finding.
    pub used: BTreeSet<(String, usize, String)>,
}

impl Sink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reports a candidate finding for 0-indexed line `idx0` of
    /// `file`, honoring any well-formed inline suppression on that
    /// line.
    pub fn report(
        &mut self,
        file: &SourceFile,
        idx0: usize,
        lint: &str,
        message: impl Into<String>,
    ) {
        let suppressed = file
            .lines
            .get(idx0)
            .and_then(|line| line.suppressions.iter().find(|s| s.reason_ok && s.lint == lint));
        match suppressed {
            Some(s) => {
                self.used.insert((file.path.clone(), s.line, lint.to_string()));
            }
            None => {
                self.findings.push(Diagnostic::new(&file.path, idx0 + 1, lint, message));
            }
        }
    }
}

/// Per-lint counters for the JSON report: how many findings survived
/// and how many were absorbed by inline suppressions. Review diffs of
/// the CI artifact make lint drift (new escapes, silently-dead rules)
/// visible without reading the whole tree.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct LintStat {
    pub lint: String,
    pub findings: usize,
    pub suppressions_used: usize,
}

/// Stable ordering so output (and the JSON artifact) is reproducible:
/// by file, then line, then lint name.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.message).cmp(&(&b.file, b.line, &b.lint, &b.message))
    });
}

/// The machine-readable report emitted by `check --json`. Owned fields
/// because the in-tree serde derive supports no generic parameters.
#[derive(Debug, Serialize)]
pub struct Report {
    /// `"clean"` or `"violations"`.
    pub status: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The lints that ran (i.e. were configured), sorted.
    pub lints: Vec<String>,
    /// Per-lint finding/suppression counters, sorted by lint name.
    pub summary: Vec<LintStat>,
    pub diagnostics: Vec<Diagnostic>,
}

/// Renders a report as minimal SARIF 2.1.0 — enough for code-scanning
/// UIs to place findings: one run, one rule per lint, one result per
/// diagnostic. File-level findings (line 0) are pinned to line 1,
/// which SARIF requires to be positive.
pub fn to_sarif(report: &Report) -> serde_json::Value {
    let rules: Vec<serde_json::Value> =
        report.lints.iter().map(|l| serde_json::json!({ "id": l, "name": l })).collect();
    let results: Vec<serde_json::Value> = report
        .diagnostics
        .iter()
        .map(|d| {
            serde_json::json!({
                "ruleId": d.lint,
                "level": "error",
                "message": { "text": d.message },
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": { "uri": d.file },
                        "region": { "startLine": d.line.max(1) }
                    }
                }]
            })
        })
        .collect();
    serde_json::json!({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "fedmp-analysis",
                    "informationUri": "docs/ANALYSIS.md",
                    "rules": rules
                }
            },
            "results": results
        }]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_clickable_prefix() {
        let d = Diagnostic::new("crates/fl/src/lm.rs", 42, "determinism", "no HashMap here");
        assert_eq!(d.render(), "crates/fl/src/lm.rs:42: [determinism] no HashMap here");
    }

    #[test]
    fn sink_records_used_suppressions_instead_of_findings() {
        let src = "// fedmp-analysis: allow(determinism) -- documented\nlet v = std::env::var(\"X\");\nlet w = Instant::now();\n";
        let file = crate::scanner::scan("crates/fl/src/x.rs", src);
        let mut sink = Sink::new();
        sink.report(&file, 1, "determinism", "env read");
        sink.report(&file, 2, "determinism", "clock read");
        assert_eq!(sink.findings.len(), 1);
        assert_eq!(sink.findings[0].line, 3);
        assert!(sink.used.contains(&("crates/fl/src/x.rs".to_string(), 1, "determinism".into())));
    }

    #[test]
    fn sarif_places_results_and_clamps_file_level_lines() {
        let report = Report {
            status: "violations".into(),
            files_scanned: 1,
            lints: vec!["determinism".into()],
            summary: vec![LintStat {
                lint: "determinism".into(),
                findings: 1,
                suppressions_used: 0,
            }],
            diagnostics: vec![Diagnostic::new("analysis.toml", 0, "determinism", "m")],
        };
        let sarif = to_sarif(&report);
        assert_eq!(sarif["version"], "2.1.0");
        let r = &sarif["runs"][0]["results"][0];
        assert_eq!(r["ruleId"], "determinism");
        assert_eq!(
            r["locations"][0]["physicalLocation"]["region"]["startLine"],
            serde_json::json!(1)
        );
    }

    #[test]
    fn sort_is_by_file_then_line_then_lint() {
        let mut v = vec![
            Diagnostic::new("b.rs", 1, "x", "m"),
            Diagnostic::new("a.rs", 9, "x", "m"),
            Diagnostic::new("a.rs", 2, "z", "m"),
            Diagnostic::new("a.rs", 2, "a", "m"),
        ];
        sort(&mut v);
        assert_eq!(
            v.iter().map(|d| (d.file.as_str(), d.line, d.lint.as_str())).collect::<Vec<_>>(),
            vec![("a.rs", 2, "a"), ("a.rs", 2, "z"), ("a.rs", 9, "x"), ("b.rs", 1, "x")]
        );
    }
}
