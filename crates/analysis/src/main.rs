//! The `fedmp-analysis` CLI.
//!
//! ```text
//! cargo run -p fedmp-analysis -- check [--format text|json|sarif] [--root DIR] [--config FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config error.

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fedmp_analysis::diagnostics::{to_sarif, Report};

const USAGE: &str = "\
fedmp-analysis — workspace invariant linter

USAGE:
    fedmp-analysis check [--format FMT] [--root DIR] [--config FILE]

OPTIONS:
    --format FMT     output format: text (default), json, or sarif
    --json           shorthand for --format json
    --root DIR       workspace root to scan (default: current directory)
    --config FILE    config file (default: <root>/analysis.toml)
    -h, --help       print this help
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    format: Format,
    root: PathBuf,
    config: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    // The CLI boundary is the one sanctioned argv read in the
    // workspace — nothing downstream of config parsing sees it.
    // fedmp-analysis: allow(determinism) -- argv parsing is the CLI entry point, not simulation state
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("check") => {}
        Some("-h") | Some("--help") => return Err(String::new()),
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
        None => return Err("missing subcommand (expected `check`)".to_string()),
    }
    let mut args = Args { format: Format::Text, root: PathBuf::from("."), config: None };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--json" => args.format = Format::Json,
            "--format" => {
                let fmt = argv
                    .next()
                    .ok_or_else(|| "--format requires an argument (text|json|sarif)".to_string())?;
                args.format = match fmt.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}` (text|json|sarif)")),
                };
            }
            "--root" => {
                args.root = argv
                    .next()
                    .map(PathBuf::from)
                    .ok_or_else(|| "--root requires a directory argument".to_string())?;
            }
            "--config" => {
                args.config = Some(
                    argv.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| "--config requires a file argument".to_string())?,
                );
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let config_path = args.config.clone().unwrap_or_else(|| args.root.join("analysis.toml"));
    let outcome = match fedmp_analysis::check_with_config_path(&args.root, &config_path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fedmp-analysis: {e}");
            return ExitCode::from(2);
        }
    };

    let status = if outcome.is_clean() { "clean" } else { "violations" };
    match args.format {
        Format::Json | Format::Sarif => {
            let report = Report {
                status: status.to_string(),
                files_scanned: outcome.files_scanned,
                lints: outcome.lints_run.clone(),
                summary: outcome.summary.clone(),
                diagnostics: outcome.diagnostics.clone(),
            };
            let rendered = if args.format == Format::Sarif {
                serde_json::to_string_pretty(&to_sarif(&report)).map_err(|e| e.to_string())
            } else {
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())
            };
            match rendered {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    eprintln!("fedmp-analysis: failed to serialize report: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Format::Text => {
            for d in &outcome.diagnostics {
                println!("{}", d.render());
            }
            println!(
                "fedmp-analysis: {} file(s) scanned, {} lint(s) active, {} finding(s)",
                outcome.files_scanned,
                outcome.lints_run.len(),
                outcome.diagnostics.len()
            );
        }
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
