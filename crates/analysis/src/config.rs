//! `analysis.toml` loading.
//!
//! The workspace vendors no TOML crate, so this module parses the small
//! subset the config actually uses: `[section.sub]` headers, `key =
//! "string"`, `key = true|false`, and (possibly multiline) arrays of
//! strings. Anything outside that subset is a hard error — the config
//! is checked in, so failing loudly beats guessing.

use std::collections::BTreeMap;
use std::fmt;

/// Configuration for one lint: where it applies and where it is
/// excused.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Path prefixes (workspace-relative) the lint scans. Empty means
    /// "every scanned file".
    pub scope: Vec<String>,
    /// Path prefixes exempted wholesale (with a reason recorded in the
    /// config comments, not here).
    pub allow: Vec<String>,
    /// Lint-specific string keys (e.g. the trace-schema file pair).
    pub keys: BTreeMap<String, String>,
}

impl LintConfig {
    /// Whether `path` falls inside this lint's scope (ignoring the
    /// allow list). Used by lints that interpret `allow` themselves —
    /// unsafe-hygiene still *scans* allowlisted files to demand
    /// `SAFETY:` comments there.
    pub fn in_scope(&self, path: &str) -> bool {
        self.scope.is_empty() || self.scope.iter().any(|p| path_has_prefix(path, p))
    }

    /// Whether `path` falls inside this lint's scope and outside its
    /// allow list.
    pub fn applies_to(&self, path: &str) -> bool {
        self.in_scope(path) && !self.allow.iter().any(|p| path_has_prefix(path, p))
    }
}

/// The parsed `analysis.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directory prefixes to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Prefixes excluded from the walk (vendored code, fixtures…).
    pub skip: Vec<String>,
    /// Lint name → configuration. A lint runs iff its table exists.
    pub lints: BTreeMap<String, LintConfig>,
}

/// A config-loading failure, with the offending line when known.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "analysis.toml:{}: {}", self.line, self.message)
        } else {
            write!(f, "analysis.toml: {}", self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError { line, message: message.into() })
}

/// True when `path` equals `prefix` or sits beneath it (component-wise,
/// so `crates/fl-data` is not a prefix match for `crates/fl`).
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

/// Parses the TOML subset described in the module docs.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section: Vec<String> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return err(lineno, "unterminated section header");
            };
            section = name.split('.').map(|s| s.trim().to_string()).collect();
            if section.iter().any(String::is_empty) {
                return err(lineno, "empty section name component");
            }
            // The header alone enables a lint: `[lints.x]` with no keys
            // is a valid "run with defaults" configuration.
            if let [s, lint] = section.as_slice() {
                if s == "lints" {
                    cfg.lints.entry(lint.clone()).or_default();
                }
            }
            continue;
        }
        let Some(eq) = line.find('=') else {
            return err(lineno, format!("expected `key = value`, got `{line}`"));
        };
        let key = line[..eq].trim().to_string();
        let mut value = line[eq + 1..].trim().to_string();
        // Multiline arrays: keep consuming until the bracket closes
        // outside any string literal.
        while value.starts_with('[') && !array_closed(&value) {
            let Some((_, next)) = lines.next() else {
                return err(lineno, format!("unterminated array for key `{key}`"));
            };
            value.push(' ');
            value.push_str(strip_toml_comment(next).trim());
        }
        apply(&mut cfg, &section, &key, &value, lineno)?;
    }
    if cfg.roots.is_empty() {
        return err(0, "missing or empty `workspace.roots`");
    }
    Ok(cfg)
}

fn apply(
    cfg: &mut Config,
    section: &[String],
    key: &str,
    value: &str,
    lineno: usize,
) -> Result<(), ConfigError> {
    match section {
        [s] if s == "workspace" => match key {
            "roots" => cfg.roots = parse_string_array(value, lineno)?,
            "skip" => cfg.skip = parse_string_array(value, lineno)?,
            other => return err(lineno, format!("unknown workspace key `{other}`")),
        },
        [s, name] if s == "lints" => {
            let lint = cfg.lints.entry(name.clone()).or_default();
            match key {
                "scope" => lint.scope = parse_string_array(value, lineno)?,
                "allow" => lint.allow = parse_string_array(value, lineno)?,
                _ => {
                    let v = parse_string(value).ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!("lint key `{key}` must be a quoted string"),
                    })?;
                    lint.keys.insert(key.to_string(), v);
                }
            }
        }
        _ => return err(lineno, format!("unknown section `[{}]`", section.join("."))),
    }
    Ok(())
}

/// Removes a `#` comment, respecting `"` string boundaries.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether a `[` array literal has its matching `]` (strings ignored).
fn array_closed(value: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

fn parse_string(value: &str) -> Option<String> {
    let v = value.trim();
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let inner = v.strip_prefix('[').and_then(|r| r.strip_suffix(']')).ok_or_else(|| {
        ConfigError { line: lineno, message: format!("expected an array, got `{value}`") }
    })?;
    let mut out = Vec::new();
    for item in split_top_level(inner) {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        match parse_string(item) {
            Some(s) => out.push(s),
            None => return err(lineno, format!("array item `{item}` is not a quoted string")),
        }
    }
    Ok(out)
}

/// Splits on commas outside string literals.
fn split_top_level(inner: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_multiline_arrays() {
        let text = r#"
# top comment
[workspace]
roots = ["crates", "src"]
skip = [
    "vendor",           # vendored stand-ins
    "crates/analysis/tests/fixtures",
]

[lints.determinism]
scope = ["crates/fl/src"]
allow = ["crates/tensor/src/parallel.rs"]

[lints.trace-schema]
event-enum = "crates/obs/src/event.rs"
schema-doc = "docs/TRACE_SCHEMA.md"
"#;
        let cfg = parse(text).unwrap();
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert_eq!(cfg.skip.len(), 2);
        let det = &cfg.lints["determinism"];
        assert!(det.applies_to("crates/fl/src/lm.rs"));
        assert!(!det.applies_to("crates/nn/src/optim.rs"));
        let ts = &cfg.lints["trace-schema"];
        assert_eq!(ts.keys["event-enum"], "crates/obs/src/event.rs");
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        assert!(path_has_prefix("crates/fl/src/lm.rs", "crates/fl"));
        assert!(!path_has_prefix("crates/fl-data/src/lib.rs", "crates/fl"));
        assert!(path_has_prefix("crates/tensor/src/parallel.rs", "crates/tensor/src/parallel.rs"));
    }

    #[test]
    fn rejects_unquoted_items_and_missing_roots() {
        assert!(parse("[workspace]\nroots = [crates]\n").is_err());
        assert!(parse("[lints.no-panic]\nscope = [\"x\"]\n").is_err());
    }
}
