//! Intra-crate two-pass call summaries.
//!
//! The structural lints need two facts about a callee the per-line
//! view cannot see:
//!
//! - **does it (transitively) emit trace events?** Trace emission is
//!   order-sensitive — the trace contract says events appear in one
//!   deterministic order, which only holds while emission stays on the
//!   caller side of every fan-out. `executor-purity` (L6) therefore
//!   bans calls to emitting functions inside executor closures.
//! - **does it return a float iterator?** A helper returning
//!   `impl Iterator<Item = f32>` hands its caller an unordered-looking
//!   reduction opportunity that the per-line float-reduction lint (L2)
//!   cannot connect to a float type. `reduction-escape` (L8) closes
//!   that hole using this summary.
//!
//! Pass 1 records per-function direct facts (trace tokens in the
//! body, float-iterator return in the signature) and the function's
//! outgoing call idents. Pass 2 propagates `emits_trace` to a
//! fixpoint along intra-crate edges. Edges are *by identifier within
//! one crate* (`crates/<name>`): cross-crate calls are invisible,
//! which is the documented precision limit — the workspace's emit
//! helpers (`emit_*`, `fedmp_obs::emit`, `TraceSession`,
//! `maybe_trace`) are all caught by direct token detection at the
//! call site regardless, so the summaries only need to carry
//! *in-crate wrappers* of those.
//!
//! Identifier-keyed summaries over-approximate on name collisions
//! (two `fn new` in one crate share a summary); for a lint that is
//! the safe direction.

use std::collections::{BTreeMap, BTreeSet};

use crate::sketch::{call_idents, Sketch};

/// Per-crate summaries: which fn names (transitively) emit trace
/// events, and which return `impl Iterator<Item = f32|f64>`.
#[derive(Debug, Default)]
pub struct CrateGraph {
    emits: BTreeMap<String, BTreeSet<String>>,
    float_iter: BTreeMap<String, BTreeSet<String>>,
}

/// The crate key for a workspace-relative path: its first two `/`
/// components (`crates/fl/src/exec.rs` → `crates/fl`), or the first
/// component for shallower paths.
pub fn crate_key(path: &str) -> String {
    path.split('/').take(2).collect::<Vec<_>>().join("/")
}

/// Direct trace-emission evidence inside a body range: the obs crate
/// itself, a trace session type, or an `emit_*`/`maybe_trace` call.
pub fn direct_trace_tokens(text: &str, range: crate::sketch::Extent) -> Option<(usize, String)> {
    let body = &text[range.start..range.end];
    for token in ["fedmp_obs", "TraceSession"] {
        if let Some(pos) = find_token(body, token) {
            return Some((range.start + pos, token.to_string()));
        }
    }
    for (off, name) in call_idents(text, range) {
        if name.starts_with("emit_") || name == "maybe_trace" {
            return Some((off, name));
        }
    }
    None
}

fn find_token(haystack: &str, needle: &str) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        from = at + 1;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let end = at + needle.len();
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

/// Builds the per-crate summaries from every scanned file's sketch.
pub fn build(files: &[(String, Sketch)]) -> CrateGraph {
    // fn name -> (direct_emit, outgoing call idents), per crate.
    let mut facts: BTreeMap<String, BTreeMap<String, (bool, BTreeSet<String>)>> = BTreeMap::new();
    let mut graph = CrateGraph::default();
    for (path, sketch) in files {
        let ckey = crate_key(path);
        for f in &sketch.fns {
            let compact_sig = &f.sig;
            if compact_sig.contains("implIterator<Item=f32>")
                || compact_sig.contains("implIterator<Item=f64>")
            {
                graph.float_iter.entry(ckey.clone()).or_default().insert(f.name.clone());
            }
            let Some(body) = f.body else { continue };
            let direct = direct_trace_tokens(&sketch.text, body).is_some();
            let calls: BTreeSet<String> =
                call_idents(&sketch.text, body).into_iter().map(|(_, n)| n).collect();
            let entry = facts
                .entry(ckey.clone())
                .or_default()
                .entry(f.name.clone())
                .or_insert((false, BTreeSet::new()));
            entry.0 |= direct;
            entry.1.extend(calls);
        }
    }
    // Fixpoint: a fn emits when it has direct evidence or calls an
    // in-crate fn that does.
    for (ckey, fns) in &facts {
        let mut emits: BTreeSet<String> =
            fns.iter().filter(|(_, (d, _))| *d).map(|(n, _)| n.clone()).collect();
        loop {
            let before = emits.len();
            for (name, (_, calls)) in fns {
                if !emits.contains(name) && calls.iter().any(|c| emits.contains(c)) {
                    emits.insert(name.clone());
                }
            }
            if emits.len() == before {
                break;
            }
        }
        if !emits.is_empty() {
            graph.emits.insert(ckey.clone(), emits);
        }
    }
    graph
}

impl CrateGraph {
    /// Whether `name` in crate `ckey` (transitively) emits trace
    /// events.
    pub fn emits(&self, ckey: &str, name: &str) -> bool {
        self.emits.get(ckey).is_some_and(|s| s.contains(name))
    }

    /// Fn names in `ckey` returning `impl Iterator<Item = f32|f64>`.
    pub fn float_iter_fns(&self, ckey: &str) -> impl Iterator<Item = &String> {
        self.float_iter.get(ckey).into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn graph(files: &[(&str, &str)]) -> CrateGraph {
        let built: Vec<(String, Sketch)> =
            files.iter().map(|(p, src)| (p.to_string(), Sketch::build(&scan(p, src)))).collect();
        build(&built)
    }

    #[test]
    fn emission_propagates_to_a_fixpoint_within_a_crate() {
        let g = graph(&[
            (
                "crates/fl/src/a.rs",
                "fn leaf(r: usize) { emit_round_end(r); }\nfn mid(r: usize) { leaf(r); }\nfn top(r: usize) { mid(r); }\nfn clean(r: usize) -> usize { r + 1 }\n",
            ),
            ("crates/fl/src/b.rs", "fn other() { top(0); }\n"),
        ]);
        for f in ["leaf", "mid", "top", "other"] {
            assert!(g.emits("crates/fl", f), "{f} should emit");
        }
        assert!(!g.emits("crates/fl", "clean"));
        // Edges never cross crates.
        assert!(!g.emits("crates/core", "top"));
    }

    #[test]
    fn direct_evidence_covers_obs_types_and_maybe_trace() {
        let g = graph(&[(
            "crates/core/src/t.rs",
            "fn a(s: &S) { let _t = crate::trace::maybe_trace(\"x\", s); }\nfn b() { TraceSession::to_file(); }\nfn c() { fedmp_obs::emit(|| e()); }\n",
        )]);
        for f in ["a", "b", "c"] {
            assert!(g.emits("crates/core", f), "{f}");
        }
    }

    #[test]
    fn float_iterator_returns_are_indexed_by_signature() {
        let g = graph(&[(
            "crates/fl/src/h.rs",
            "pub fn deltas(xs: &[f32]) -> impl Iterator<Item = f32> + '_ { xs.iter().copied() }\npub fn ints(xs: &[u32]) -> impl Iterator<Item = u32> + '_ { xs.iter().copied() }\n",
        )]);
        let names: Vec<&String> = g.float_iter_fns("crates/fl").collect();
        assert_eq!(names, vec!["deltas"]);
    }
}
