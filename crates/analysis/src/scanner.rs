//! A comment- and string-aware line scanner for Rust source.
//!
//! The linter deliberately avoids a full parser: every rule it enforces
//! is expressible over *code tokens per line*, provided comments and
//! string literals are reliably stripped first (so `"HashMap"` in a
//! message, or `unwrap` in a doc comment, never trips a lint). This
//! module produces that view: for each physical line, the code with
//! comments removed and string/char literal *contents* blanked, the
//! comment text (for `SAFETY:` and suppression directives), whether the
//! line sits inside a `#[cfg(test)]` item, and any
//! `// fedmp-analysis: allow(<lint>) -- <reason>` suppressions that
//! apply to it.

/// One inline suppression parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The lint name inside `allow(...)`.
    pub lint: String,
    /// Whether the mandatory `-- <reason>` trailer was present and
    /// non-empty. Reason-less suppressions do **not** suppress; they
    /// are reported by the `suppression` meta-lint instead.
    pub reason_ok: bool,
    /// 1-indexed line of the directive comment itself (which may be
    /// above the code line it covers). The suppression-audit lint keys
    /// its used/dead bookkeeping on this line.
    pub line: usize,
}

/// One physical source line, post-stripping.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments removed and literal contents blanked.
    /// Structure (braces, calls, turbofish) is preserved verbatim.
    pub code: String,
    /// The comment text carried by this line (line, block and doc
    /// comments concatenated).
    pub comment: String,
    /// True when the line is inside an item gated by `#[cfg(test)]`.
    pub in_test: bool,
    /// Suppressions that apply to this line (its own trailing comment,
    /// plus any suppression-only comment lines directly above).
    pub suppressions: Vec<Suppression>,
}

impl Line {
    /// Whether a well-formed suppression for `lint` covers this line.
    pub fn suppresses(&self, lint: &str) -> bool {
        self.suppressions.iter().any(|s| s.reason_ok && s.lint == lint)
    }
}

/// A scanned source file: its workspace-relative path and line table.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the scanned root, with `/` separators.
    pub path: String,
    /// The raw file contents (needed by the schema cross-check, which
    /// reads string literals the stripped view deliberately blanks).
    pub raw: String,
    /// Per-line stripped view, 0-indexed (diagnostics add 1).
    pub lines: Vec<Line>,
    /// Lines carrying a `fedmp-analysis:` marker that failed to parse
    /// or omitted the mandatory reason (1-indexed).
    pub malformed_suppressions: Vec<usize>,
    /// Every well-formed directive in the file, in order, whether or
    /// not it attached to a code line. The suppression-audit lint
    /// diffs this list against the suppressions that actually fired.
    pub directives: Vec<Suppression>,
}

/// Scans `source`, producing the stripped line table for `path`.
pub fn scan(path: &str, source: &str) -> SourceFile {
    let stripped = strip(source);
    let mut lines: Vec<Line> = stripped
        .into_iter()
        .map(|(code, comment)| Line { code, comment, in_test: false, suppressions: Vec::new() })
        .collect();
    mark_test_regions(&mut lines);
    let (malformed, directives) = attach_suppressions(&mut lines);
    SourceFile {
        path: path.to_string(),
        raw: source.to_string(),
        lines,
        malformed_suppressions: malformed,
        directives,
    }
}

/// Character-level stripping pass: returns `(code, comment)` per line.
fn strip(source: &str) -> Vec<(String, String)> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; every other mode
            // continues across it.
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            out.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if c == '\'' {
                    // Distinguish char literals from lifetimes: a char
                    // literal is `'\..'` or `'X'`; everything else
                    // (e.g. `'a` in `&'a str`) passes through as code.
                    if next == Some('\\') || (chars.get(i + 2) == Some(&'\'') && next.is_some()) {
                        code.push_str("''");
                        mode = Mode::Char;
                        i += 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // Raw / byte / raw-byte string openers: r", r#",
                    // br", b" etc. Anything else falls through as code.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = c != 'b' || j > i + 1;
                    if chars.get(j) == Some(&'"') && (is_raw || hashes == 0) {
                        if c == 'b' && j == i + 1 {
                            // Plain byte string b"...": ordinary escapes.
                            code.push_str("b\"");
                            mode = Mode::Str;
                            i = j + 1;
                        } else {
                            code.push_str("r\"");
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 { Mode::Code } else { Mode::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped character (contents blanked)
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        code.push('"');
                        mode = Mode::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            Mode::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.push((code, comment));
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Marks every line inside a `#[cfg(test)]`-gated item. Brace counting
/// over the stripped code is exact because literal/comment braces are
/// already gone.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0i64;
    let mut pending: Option<i64> = None; // depth at which the attr appeared
    let mut region: Option<i64> = None; // depth owning the test item's block
    for line in lines.iter_mut() {
        let mut active = region.is_some();
        let compact: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if region.is_none()
            && (compact.contains("#[cfg(test)]") || compact.contains("#[cfg(all(test"))
        {
            pending = Some(depth);
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(p) = pending {
                        if region.is_none() && depth == p + 1 {
                            region = Some(depth);
                            pending = None;
                            active = true;
                        }
                    }
                }
                '}' => {
                    if region == Some(depth) {
                        region = None;
                    }
                    depth -= 1;
                }
                // `#[cfg(test)] use …;` — the attribute gated a
                // braceless item; nothing further to mark.
                ';' if pending == Some(depth) => {
                    pending = None;
                    active = true;
                }
                _ => {}
            }
        }
        line.in_test = active || region.is_some();
    }
}

/// Parses `fedmp-analysis: allow(<lint>) -- <reason>` directives and
/// attaches them to the line they cover (their own line when it has
/// code, otherwise the next code-bearing line). Returns the 1-indexed
/// lines whose directive was malformed or reason-less.
///
/// A directive must *begin* the comment (after doc-comment `/`/`!`
/// markers and whitespace). Mid-sentence mentions of the marker —
/// prose *about* the directive syntax — are not directive attempts.
fn attach_suppressions(lines: &mut [Line]) -> (Vec<usize>, Vec<Suppression>) {
    const MARKER: &str = "fedmp-analysis:";
    let mut malformed = Vec::new();
    let mut directives = Vec::new();
    let mut pending: Vec<Suppression> = Vec::new();
    for (idx, line) in lines.iter_mut().enumerate() {
        let has_code = !line.code.trim().is_empty();
        let anchored = line.comment.trim_start_matches(['/', '!', ' ', '\t']);
        if let Some(tail) = anchored.strip_prefix(MARKER) {
            match parse_directive(tail, idx + 1) {
                Some(s) => {
                    if !s.reason_ok {
                        malformed.push(idx + 1);
                    }
                    directives.push(s.clone());
                    if has_code {
                        line.suppressions.push(s);
                    } else {
                        pending.push(s);
                    }
                }
                None => malformed.push(idx + 1),
            }
        }
        if has_code && !pending.is_empty() {
            line.suppressions.append(&mut pending);
        }
    }
    (malformed, directives)
}

/// Parses the tail after `fedmp-analysis:`. Expected shape:
/// ` allow(<lint>) -- <reason>`.
fn parse_directive(tail: &str, line: usize) -> Option<Suppression> {
    let tail = tail.trim_start();
    let rest = tail.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    if lint.is_empty() || !lint.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let reason_ok = match after.strip_prefix("--") {
        Some(reason) => !reason.trim().is_empty(),
        None => false,
    };
    Some(Suppression { lint, reason_ok, line })
}

/// True when `needle` occurs in `haystack` delimited by non-identifier
/// characters on both sides (so `Instant` does not match
/// `InstantaneousRate`).
pub fn contains_token(haystack: &str, needle: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + needle.len();
        let after_ok =
            !haystack[end..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = "let x = \"HashMap in a string\"; // HashMap in a comment\nlet y = 1;\n";
        let f = scan("a.rs", src);
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
        assert_eq!(f.lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let a = r#\"unsafe { } \"# ; let b = '\\u{1F600}'; let c = b\"unsafe\";\n";
        let f = scan("a.rs", src);
        assert!(!f.lines[0].code.contains("unsafe"), "{}", f.lines[0].code);
    }

    #[test]
    fn lifetimes_survive_stripping() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        let f = scan("a.rs", src);
        assert!(f.lines[0].code.contains("&'a str"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nunsafe\n*/ c\n";
        let f = scan("a.rs", src);
        assert_eq!(f.lines[0].code.replace(' ', ""), "ab");
        assert!(f.lines[2].code.trim().is_empty());
        assert!(f.lines[2].comment.contains("unsafe"));
        assert_eq!(f.lines[3].code.trim(), "c");
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let f = scan("a.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn suppressions_attach_to_next_code_line() {
        let src = "// fedmp-analysis: allow(determinism) -- reads a config knob\nlet v = std::env::var(\"X\");\nlet w = 2; // fedmp-analysis: allow(no-panic) -- checked above\n";
        let f = scan("a.rs", src);
        assert!(f.lines[1].suppresses("determinism"));
        assert!(f.lines[2].suppresses("no-panic"));
        assert!(f.malformed_suppressions.is_empty());
    }

    #[test]
    fn prose_mentions_of_the_marker_are_not_directives() {
        let src = "// the linter reads fedmp-analysis: allow(...) comments\nlet x = 1;\n/// Docs showing `fedmp-analysis:` mid-sentence are fine too.\nlet y = 2;\n";
        let f = scan("a.rs", src);
        assert!(f.malformed_suppressions.is_empty(), "{:?}", f.malformed_suppressions);
        assert!(f.lines.iter().all(|l| l.suppressions.is_empty()));
    }

    #[test]
    fn reasonless_suppressions_are_malformed_and_inert() {
        let src = "let v = 1; // fedmp-analysis: allow(determinism)\n";
        let f = scan("a.rs", src);
        assert_eq!(f.malformed_suppressions, vec![1]);
        assert!(!f.lines[0].suppresses("determinism"));
    }

    #[test]
    fn directives_are_recorded_with_their_own_line() {
        let src = "// fedmp-analysis: allow(determinism) -- env knob\nlet v = std::env::var(\"X\");\nlet w = 2; // fedmp-analysis: allow(no-panic) -- total\n";
        let f = scan("a.rs", src);
        assert_eq!(f.directives.len(), 2);
        assert_eq!((f.directives[0].line, f.directives[0].lint.as_str()), (1, "determinism"));
        assert_eq!((f.directives[1].line, f.directives[1].lint.as_str()), (3, "no-panic"));
        // The standalone directive covers line 2 but keeps line 1 as
        // its own identity.
        assert_eq!(f.lines[1].suppressions[0].line, 1);
    }

    #[test]
    fn dangling_directive_at_eof_is_still_recorded() {
        // No code line follows, so it suppresses nothing — exactly the
        // shape the suppression-audit lint must be able to see.
        let src = "let x = 1;\n// fedmp-analysis: allow(determinism) -- covers nothing\n";
        let f = scan("a.rs", src);
        assert_eq!(f.directives.len(), 1);
        assert!(f.lines.iter().all(|l| l.suppressions.is_empty()));
    }

    #[test]
    fn raw_strings_with_hashes_hide_quotes_and_markers() {
        // A `"#` inside r##"..."## must not close the literal, and a
        // directive-shaped string must not become a directive. The
        // trailing real comment still parses.
        let src = "let a = r##\"tricky \"# not the end // fedmp-analysis: allow(no-panic) -- fake\"##; // real comment\nlet b = x.unwrap();\n";
        let f = scan("a.rs", src);
        assert!(f.lines[0].code.contains("let a = r\""), "{}", f.lines[0].code);
        assert!(!f.lines[0].code.contains("tricky"));
        assert!(f.directives.is_empty(), "{:?}", f.directives);
        assert_eq!(f.lines[0].comment.trim(), "real comment");
        assert!(f.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn multiline_raw_string_keeps_banned_tokens_blanked() {
        let src = "let q = r#\"line one\nHashMap across lines\nunsafe { }\"#;\nlet z = 1;\n";
        let f = scan("a.rs", src);
        for l in &f.lines[0..3] {
            assert!(!l.code.contains("HashMap") && !l.code.contains("unsafe"), "{:?}", l.code);
        }
        assert_eq!(f.lines[3].code.trim(), "let z = 1;");
    }

    #[test]
    fn nested_block_comments_do_not_resurface_code() {
        // The inner `*/` must not close the outer comment; everything
        // up to the second `*/` stays comment, including directive
        // markers, which never parse from inside a block.
        let src = "/* outer /* inner */ still comment fedmp-analysis: allow(x) */ let k = 1;\n/* a /* b /* c */ */ unsafe */ let m = 2;\n";
        let f = scan("a.rs", src);
        assert_eq!(f.lines[0].code.trim(), "let k = 1;");
        assert!(f.directives.is_empty());
        assert_eq!(f.lines[1].code.trim(), "let m = 2;");
        assert!(!f.lines[1].code.contains("unsafe"));
    }

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(contains_token("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_token("struct HashMapLike;", "HashMap"));
        assert!(contains_token("Instant::now()", "Instant"));
        assert!(!contains_token("InstantRate", "Instant"));
    }
}
