//! A structural "syntax sketch" over the stripped scanner view.
//!
//! The line-oriented lints (L1–L4) need no structure, but the
//! concurrency lints do: *where does an `ordered_map` closure start
//! and end*, *which statements sit at the top level of a
//! `thread::scope` body*, *which function does this call edge point
//! at*. A full parser (`syn`, rustc) would answer all of that — and
//! drag in exactly the dependency footprint this crate exists to
//! avoid. This module builds the minimal substitute: the scanner has
//! already blanked strings, chars and comments, so parentheses and
//! braces in the remaining text are *real* delimiters and plain
//! counting is exact. On top of that we extract:
//!
//! - **call extents**: for a callee pattern like `ordered_map(` or
//!   `.spawn(`, the byte range between its matched parentheses — the
//!   whole argument list, closures included, however many lines it
//!   spans;
//! - **function items**: name, compacted signature and brace-matched
//!   body range for every `fn`, which the call-summary pass
//!   ([`crate::callgraph`]) turns into per-crate emit/return facts;
//! - **call idents**: identifiers immediately followed by `(`, the
//!   dependency-free stand-in for call edges.
//!
//! Everything is offset-based against one joined text so multi-line
//! constructs need no special casing; [`Sketch::line_at`] maps any
//! offset back to a 1-indexed line for diagnostics.

use crate::scanner::SourceFile;

/// A byte range (half-open) inside [`Sketch::text`] — the inside of a
/// matched `(...)` or `{...}` pair, delimiters excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    pub start: usize,
    pub end: usize,
}

impl Extent {
    pub fn contains(&self, other: &Extent) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

/// One `fn` item found in the sketch.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's identifier.
    pub name: String,
    /// `fn` keyword through the byte before the body `{` (or the `;`
    /// for bodyless declarations), whitespace removed — enough to see
    /// return types like `impl Iterator<Item = f32>`.
    pub sig: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Body range between the braces; `None` for trait-method
    /// declarations and other bodyless forms.
    pub body: Option<Extent>,
}

/// The structural sketch of one scanned file.
#[derive(Debug)]
pub struct Sketch {
    /// All stripped code lines joined with `\n`.
    pub text: String,
    /// Byte offset where each 0-indexed line starts in `text`.
    line_starts: Vec<usize>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
}

impl Sketch {
    pub fn build(file: &SourceFile) -> Sketch {
        let mut text = String::new();
        let mut line_starts = Vec::with_capacity(file.lines.len());
        for line in &file.lines {
            line_starts.push(text.len());
            text.push_str(&line.code);
            text.push('\n');
        }
        let fns = find_fns(&text, &line_starts);
        Sketch { text, line_starts, fns }
    }

    /// 1-indexed line containing byte `offset`.
    pub fn line_at(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i.max(1),
        }
    }

    /// Extents of every call whose text ends with `needle` (which must
    /// end in `(`): the range between that `(` and its matching `)`.
    /// A needle starting with an identifier character is matched
    /// token-boundary-aware on its left, so `ordered_map(` does not
    /// hit `reordered_map(`.
    pub fn call_extents(&self, needle: &str) -> Vec<Extent> {
        debug_assert!(needle.ends_with('('));
        let bytes = self.text.as_bytes();
        let mut out = Vec::new();
        let mut from = 0usize;
        while let Some(pos) = self.text[from..].find(needle) {
            let at = from + pos;
            from = at + 1;
            let first = needle.as_bytes()[0];
            let bounded = !(first.is_ascii_alphanumeric() || first == b'_')
                || at == 0
                || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
            if !bounded {
                continue;
            }
            let open = at + needle.len() - 1;
            if let Some(close) = match_delim(&self.text, open, b'(', b')') {
                out.push(Extent { start: open + 1, end: close });
            }
        }
        out
    }
}

/// Offset of the delimiter closing the one at `open`, or `None` when
/// the text is unbalanced (half-written code; the lint then skips the
/// region rather than guessing).
fn match_delim(text: &str, open: usize, od: u8, cd: u8) -> Option<usize> {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes[open], od);
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == od {
            depth += 1;
        } else if b == cd {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Public paren-matching entry for other structural passes.
pub fn match_paren(text: &str, open: usize) -> Option<usize> {
    match_delim(text, open, b'(', b')')
}

/// Public angle-bracket matching (turbofish) for other passes. Plain
/// counting is acceptable here because the scanner already blanked
/// string/char literals, and `<`/`>` as comparison operators simply
/// fail to balance — callers treat `None` as "not a turbofish".
pub fn match_angle(text: &str, open: usize) -> Option<usize> {
    match_delim(text, open, b'<', b'>')
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn find_fns(text: &str, line_starts: &[usize]) -> Vec<FnItem> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find("fn ") {
        let at = from + pos;
        from = at + 3;
        if at > 0 && is_ident_char(bytes[at - 1]) {
            continue; // `often `, `burn ` … not the keyword
        }
        // Name: the identifier after `fn` (skipping whitespace).
        let mut i = at + 3;
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && is_ident_char(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn(usize) -> T` in type position
        }
        let name = text[name_start..i].to_string();
        // Walk to the body `{` or terminating `;`, tracking paren
        // depth so `{` inside default-argument-ish positions (none in
        // Rust, but closures in const generics) cannot confuse us.
        let mut depth = 0i64;
        let mut body = None;
        let mut sig_end = None;
        let mut j = i;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                b'{' if depth == 0 => {
                    sig_end = Some(j);
                    body = match_delim(text, j, b'{', b'}')
                        .map(|close| Extent { start: j + 1, end: close });
                    break;
                }
                b';' if depth == 0 => {
                    sig_end = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(sig_end) = sig_end else { continue };
        let sig: String = text[at..sig_end].chars().filter(|c| !c.is_whitespace()).collect();
        let line = match line_starts.binary_search(&at) {
            Ok(k) => k + 1,
            Err(k) => k.max(1),
        };
        out.push(FnItem { name, sig, line, body });
    }
    out
}

/// Identifiers immediately followed by `(` within `text[range]`,
/// reported as `(absolute_offset, name)`. Control-flow keywords and
/// the ubiquitous `Some`/`Ok`/`Err`/`None` constructors are skipped —
/// they are never call edges worth following.
pub fn call_idents(text: &str, range: Extent) -> Vec<(usize, String)> {
    const SKIP: &[&str] = &[
        "if", "while", "for", "match", "return", "loop", "fn", "move", "else", "in", "as", "Some",
        "Ok", "Err", "None",
    ];
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        let c = bytes[i];
        if is_ident_char(c) && !c.is_ascii_digit() && (i == 0 || !is_ident_char(bytes[i - 1])) {
            let start = i;
            while i < range.end && is_ident_char(bytes[i]) {
                i += 1;
            }
            let name = &text[start..i];
            // Allow a turbofish between name and `(`: `sum::<f32>(`.
            let mut k = i;
            if bytes.get(k) == Some(&b':') && bytes.get(k + 1) == Some(&b':') {
                if bytes.get(k + 2) == Some(&b'<') {
                    if let Some(close) = match_delim(text, k + 2, b'<', b'>') {
                        k = close + 1;
                    }
                } else {
                    continue; // path segment, not a call — keep walking
                }
            }
            if bytes.get(k) == Some(&b'(') && !SKIP.contains(&name) {
                out.push((start, name.to_string()));
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn sketch(src: &str) -> Sketch {
        Sketch::build(&scan("crates/fl/src/x.rs", src))
    }

    #[test]
    fn call_extents_span_multiline_closures() {
        let s = sketch("let out = ordered_map(items, |i, x| {\n    let y = x + 1;\n    y\n});\n");
        let ext = s.call_extents("ordered_map(");
        assert_eq!(ext.len(), 1);
        let body = &s.text[ext[0].start..ext[0].end];
        assert!(body.contains("let y = x + 1;"));
        assert_eq!(s.line_at(ext[0].start), 1);
        assert!(s.call_extents("reordered_map(").is_empty());
    }

    #[test]
    fn parens_in_stripped_strings_cannot_unbalance_extents() {
        let s = sketch("go(\"((((\", |x| x)(1);\n");
        let ext = s.call_extents("go(");
        assert_eq!(ext.len(), 1);
        assert!(s.text[ext[0].start..ext[0].end].ends_with("|x| x"));
    }

    #[test]
    fn fn_items_carry_signature_and_body() {
        let s = sketch(
            "pub fn deltas(xs: &[f32]) -> impl Iterator<Item = f32> + '_ {\n    xs.iter().map(|v| v * 0.5)\n}\n\ntrait T { fn decl(&self) -> usize; }\n",
        );
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "deltas");
        assert!(s.fns[0].sig.contains("implIterator<Item=f32>"));
        assert!(s.fns[0].body.is_some());
        assert_eq!(s.fns[1].name, "decl");
        assert!(s.fns[1].body.is_none());
    }

    #[test]
    fn call_idents_take_last_path_segment_and_skip_keywords() {
        let s = sketch(
            "fn f() {\n    exec::ordered_map(v, g);\n    if cond(x) { h(y) } else { Some(z) }\n}\n",
        );
        let body = s.fns[0].body.unwrap();
        let names: Vec<String> = call_idents(&s.text, body).into_iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["ordered_map", "cond", "h"]);
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let s = sketch("fn f() { let x = total.sum::<f32>(); }\n");
        let body = s.fns[0].body.unwrap();
        let names: Vec<String> = call_idents(&s.text, body).into_iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["sum"]);
    }
}
