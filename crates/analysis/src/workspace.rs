//! Workspace file discovery: a deterministic recursive walk over the
//! configured roots, yielding `.rs` files as workspace-relative paths.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{path_has_prefix, Config};

/// Collects every `.rs` file under `root`'s configured roots, skipping
/// the configured skip prefixes. Paths come back sorted (the walk reads
/// directory entries in sorted order, so output is stable across
/// filesystems).
pub fn collect_rust_files(root: &Path, config: &Config) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for r in &config.roots {
        let dir = root.join(r);
        if !dir.exists() {
            continue;
        }
        walk(root, &dir, &config.skip, &mut out)?;
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, skip: &[String], out: &mut Vec<PathBuf>) -> io::Result<()> {
    let rel = relative(root, dir);
    if skip.iter().any(|s| path_has_prefix(&rel, s)) {
        return Ok(());
    }
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            walk(root, &entry, skip, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let rel = relative(root, &entry);
            if !skip.iter().any(|s| path_has_prefix(&rel, s)) {
                out.push(entry);
            }
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated. Falls back to the full
/// path when `path` is not under `root`.
pub fn relative(root: &Path, path: &Path) -> String {
    let p = path.strip_prefix(root).unwrap_or(path);
    p.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    #[test]
    fn walk_skips_configured_prefixes_and_sorts() {
        // Exercise against this crate's own tree: src/ exists, and we
        // can skip a real subpath.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let cfg =
            config::parse("[workspace]\nroots = [\"src\"]\nskip = [\"src/lints\"]\n").unwrap();
        let files = collect_rust_files(root, &cfg).unwrap();
        assert!(!files.is_empty());
        let rels: Vec<String> = files.iter().map(|f| relative(root, f)).collect();
        assert!(rels.iter().any(|r| r == "src/scanner.rs"), "{rels:?}");
        assert!(rels.iter().all(|r| !r.starts_with("src/lints/")), "{rels:?}");
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
    }
}
