//! # fedmp-analysis
//!
//! A workspace invariant linter: statically enforces the rules the
//! paper reproduction's claims rest on, without `syn` or rustc —
//! a comment/string-aware token scanner is enough for every rule here,
//! and keeps the tool dependency-free and fast enough to run on each
//! `cargo test`.
//!
//! The lints (see `docs/ANALYSIS.md` for the full rationale):
//!
//! | lint | invariant protected |
//! |------|---------------------|
//! | `determinism` | same seed ⇒ bit-identical results: no hasher-ordered iteration, clocks, thread ids or env reads on the simulation path |
//! | `float-reduction` | reductions keep one fixed order at any thread count: float sums route through `fedmp_tensor::parallel::{sum_f32, sum_f64}` |
//! | `unsafe-hygiene` | `unsafe` only in the allowlisted band scheduler, and every occurrence carries a `// SAFETY:` comment |
//! | `no-panic` | engines and the threaded runtime fail into typed errors, never aborts |
//! | `trace-schema` | `TraceEvent::KINDS` and `docs/TRACE_SCHEMA.md` describe the same event set |
//! | `suppression` | every inline `allow(...)` carries a written reason |
//!
//! Configuration lives in the checked-in `analysis.toml`. A finding is
//! suppressed inline with
//! `// fedmp-analysis: allow(<lint>) -- <reason>` — the reason is
//! mandatory; a reason-less directive is itself a finding.

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]

pub mod config;
pub mod diagnostics;
pub mod lints;
pub mod scanner;
pub mod workspace;

use std::fmt;
use std::path::Path;

pub use config::{Config, ConfigError};
pub use diagnostics::{Diagnostic, Report};

/// A failure of the analysis *run* itself (bad config, unreadable
/// tree) — distinct from lint findings, which are data.
#[derive(Debug)]
pub enum AnalysisError {
    /// `analysis.toml` was missing or malformed.
    Config(ConfigError),
    /// A file or directory could not be read.
    Io { path: String, source: std::io::Error },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Config(e) => write!(f, "{e}"),
            AnalysisError::Io { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<ConfigError> for AnalysisError {
    fn from(e: ConfigError) -> Self {
        AnalysisError::Config(e)
    }
}

/// The result of one analysis run.
#[derive(Debug)]
pub struct Outcome {
    /// All findings, sorted by (file, line, lint).
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// The lints that ran, sorted by name.
    pub lints_run: Vec<String>,
}

impl Outcome {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Loads `<root>/analysis.toml` and checks the workspace under `root`.
pub fn check_root(root: &Path) -> Result<Outcome, AnalysisError> {
    let config_path = root.join("analysis.toml");
    check_with_config_path(root, &config_path)
}

/// As [`check_root`], with an explicit config file path.
pub fn check_with_config_path(root: &Path, config_path: &Path) -> Result<Outcome, AnalysisError> {
    let text = std::fs::read_to_string(config_path).map_err(|source| AnalysisError::Io {
        path: config_path.to_string_lossy().into_owned(),
        source,
    })?;
    let config = config::parse(&text)?;
    check(root, &config)
}

/// Runs every configured lint over the workspace rooted at `root`.
pub fn check(root: &Path, config: &Config) -> Result<Outcome, AnalysisError> {
    let files = workspace::collect_rust_files(root, config).map_err(|source| {
        AnalysisError::Io { path: root.to_string_lossy().into_owned(), source }
    })?;
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut files_scanned = 0usize;

    for path in &files {
        let rel = workspace::relative(root, path);
        let raw = std::fs::read_to_string(path)
            .map_err(|source| AnalysisError::Io { path: rel.clone(), source })?;
        let file = scanner::scan(&rel, &raw);
        files_scanned += 1;

        // The suppression meta-check is always on: a malformed or
        // reason-less directive is a finding wherever it appears.
        for line in &file.malformed_suppressions {
            diags.push(Diagnostic::new(
                &rel,
                *line,
                "suppression",
                "malformed `fedmp-analysis:` directive; the form is \
                 `// fedmp-analysis: allow(<lint>) -- <reason>` and the reason is mandatory",
            ));
        }
        // Unknown lint names in suppressions are typos that silently
        // suppress nothing — flag them too.
        for (idx, line) in file.lines.iter().enumerate() {
            for s in &line.suppressions {
                if !lints::LINT_NAMES.contains(&s.lint.as_str()) {
                    diags.push(Diagnostic::new(
                        &rel,
                        idx + 1,
                        "suppression",
                        format!(
                            "`allow({})` names no known lint; known lints: {}",
                            s.lint,
                            lints::LINT_NAMES.join(", ")
                        ),
                    ));
                }
            }
        }

        if let Some(cfg) = config.lints.get(lints::determinism::NAME) {
            if cfg.applies_to(&rel) {
                lints::determinism::check(&file, cfg, &mut diags);
            }
        }
        if let Some(cfg) = config.lints.get(lints::float_reduction::NAME) {
            if cfg.applies_to(&rel) {
                lints::float_reduction::check(&file, cfg, &mut diags);
            }
        }
        // Scope-only: this lint treats `allow` as "unsafe permitted
        // here (with SAFETY comments)", not "don't scan".
        if let Some(cfg) = config.lints.get(lints::unsafe_hygiene::NAME) {
            if cfg.in_scope(&rel) {
                lints::unsafe_hygiene::check(&file, cfg, &mut diags);
            }
        }
        if let Some(cfg) = config.lints.get(lints::no_panic::NAME) {
            if cfg.applies_to(&rel) {
                lints::no_panic::check(&file, cfg, &mut diags);
            }
        }
    }

    // Workspace-level cross-check (runs once, not per file).
    if let Some(cfg) = config.lints.get(lints::trace_schema::NAME) {
        lints::trace_schema::check(root, cfg, &mut diags);
    }

    diagnostics::sort(&mut diags);
    let mut lints_run: Vec<String> = config.lints.keys().cloned().collect();
    lints_run.push("suppression".to_string());
    lints_run.sort();
    lints_run.dedup();
    Ok(Outcome { diagnostics: diags, files_scanned, lints_run })
}
