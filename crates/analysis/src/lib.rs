//! # fedmp-analysis
//!
//! A workspace invariant linter: statically enforces the rules the
//! paper reproduction's claims rest on, without `syn` or rustc. The
//! comment/string-aware token scanner handles the line-oriented rules;
//! on top of it, a structural "syntax sketch" pass ([`sketch`]) finds
//! call extents, function items and call edges, and an intra-crate
//! call-summary pass ([`callgraph`]) answers "does this helper emit
//! trace events / return a float iterator". All of it stays
//! dependency-free and fast enough to run on each `cargo test`.
//!
//! The lints (see `docs/ANALYSIS.md` for the full rationale):
//!
//! | lint | invariant protected |
//! |------|---------------------|
//! | `determinism` | same seed ⇒ bit-identical results: no hasher-ordered iteration, clocks, thread ids or env reads on the simulation path |
//! | `float-reduction` | reductions keep one fixed order at any thread count: float sums route through `fedmp_tensor::parallel::{sum_f32, sum_f64}` |
//! | `unsafe-hygiene` | `unsafe` only in the allowlisted band scheduler, and every occurrence carries a `// SAFETY:` comment |
//! | `no-panic` | engines and the threaded runtime fail into typed errors, never aborts |
//! | `trace-schema` | `TraceEvent::KINDS` and `docs/TRACE_SCHEMA.md` describe the same event set |
//! | `suppression` | every inline `allow(...)` carries a written reason |
//! | `executor-purity` | executor closures (`ordered_map`, `scope.spawn`) stay pure: no trace emission, bandit mutation, RNG capture or shared-accumulator writes inside the fan-out |
//! | `channel-protocol` | every spawn-bearing `thread::scope` drops its channel endpoints on all exit paths, and never recv-blocks on a channel only it can feed |
//! | `reduction-escape` | `impl Iterator<Item = f32>` helpers are not `.sum()`-ed at call sites (the laundering hole in `float-reduction`) |
//! | `suppression-audit` | every inline suppression still absorbs a finding, and every config `allow` entry still excuses one — escapes that suppress nothing are findings |
//!
//! Configuration lives in the checked-in `analysis.toml`. A finding is
//! suppressed inline with
//! `// fedmp-analysis: allow(<lint>) -- <reason>` — the reason is
//! mandatory; a reason-less directive is itself a finding. Every
//! scope/allow/skip path in the config must exist on disk: a dangling
//! entry is a config error (exit 2), because an entry matching nothing
//! is either a typo silently widening the lint's reach or a leftover
//! silently narrowing it.

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod diagnostics;
pub mod lints;
pub mod scanner;
pub mod sketch;
pub mod workspace;

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

use diagnostics::{LintStat, Sink};
use scanner::SourceFile;
use sketch::Sketch;

pub use config::{Config, ConfigError};
pub use diagnostics::{Diagnostic, Report};

/// A failure of the analysis *run* itself (bad config, unreadable
/// tree) — distinct from lint findings, which are data.
#[derive(Debug)]
pub enum AnalysisError {
    /// `analysis.toml` was missing or malformed.
    Config(ConfigError),
    /// A file or directory could not be read.
    Io { path: String, source: std::io::Error },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Config(e) => write!(f, "{e}"),
            AnalysisError::Io { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<ConfigError> for AnalysisError {
    fn from(e: ConfigError) -> Self {
        AnalysisError::Config(e)
    }
}

/// The result of one analysis run.
#[derive(Debug)]
pub struct Outcome {
    /// All findings, sorted by (file, line, lint).
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// The lints that ran, sorted by name.
    pub lints_run: Vec<String>,
    /// Per-lint finding/suppression counters, sorted by lint name.
    pub summary: Vec<LintStat>,
}

impl Outcome {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Loads `<root>/analysis.toml` and checks the workspace under `root`.
pub fn check_root(root: &Path) -> Result<Outcome, AnalysisError> {
    let config_path = root.join("analysis.toml");
    check_with_config_path(root, &config_path)
}

/// As [`check_root`], with an explicit config file path.
pub fn check_with_config_path(root: &Path, config_path: &Path) -> Result<Outcome, AnalysisError> {
    let text = std::fs::read_to_string(config_path).map_err(|source| AnalysisError::Io {
        path: config_path.to_string_lossy().into_owned(),
        source,
    })?;
    let config = config::parse(&text)?;
    validate_config_paths(root, &config)?;
    check(root, &config)
}

/// Every `skip`, lint `scope` and lint `allow` entry must name
/// something that exists on disk. A dangling entry is a hard config
/// error, not a warning: a typo'd scope silently widens or narrows
/// what the lint sees, and a leftover allow is a standing escape for
/// code that no longer exists. `roots` are exempt — they are
/// prospective mount points the walker skips when absent — as are
/// lint-specific string keys, which the owning lint validates itself.
fn validate_config_paths(root: &Path, config: &Config) -> Result<(), ConfigError> {
    fn ensure(root: &Path, section: &str, entry: &str) -> Result<(), ConfigError> {
        if root.join(entry).exists() {
            Ok(())
        } else {
            Err(ConfigError {
                line: 0,
                message: format!(
                    "{section} entry `{entry}` matches no file or directory on disk — \
                     fix the path or delete the entry"
                ),
            })
        }
    }
    for entry in &config.skip {
        ensure(root, "workspace.skip", entry)?;
    }
    for (name, lint) in &config.lints {
        for entry in &lint.scope {
            ensure(root, &format!("lints.{name}.scope"), entry)?;
        }
        for entry in &lint.allow {
            ensure(root, &format!("lints.{name}.allow"), entry)?;
        }
    }
    Ok(())
}

/// Runs every configured lint over the workspace rooted at `root`.
pub fn check(root: &Path, config: &Config) -> Result<Outcome, AnalysisError> {
    let files = workspace::collect_rust_files(root, config).map_err(|source| {
        AnalysisError::Io { path: root.to_string_lossy().into_owned(), source }
    })?;

    // Scan the whole tree up front: the structural lints need every
    // file's sketch (call summaries connect files within a crate)
    // before any per-file pass can run.
    let mut scanned: Vec<SourceFile> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = workspace::relative(root, path);
        let raw = std::fs::read_to_string(path)
            .map_err(|source| AnalysisError::Io { path: rel.clone(), source })?;
        scanned.push(scanner::scan(&rel, &raw));
    }
    let files_scanned = scanned.len();
    let sketches: Vec<(String, Sketch)> =
        scanned.iter().map(|f| (f.path.clone(), Sketch::build(f))).collect();
    let graph = callgraph::build(&sketches);
    let mut sink = Sink::new();

    for (file, (_, sketch)) in scanned.iter().zip(&sketches) {
        let rel = &file.path;

        // The suppression meta-check is always on: a malformed or
        // reason-less directive is a finding wherever it appears. It
        // bypasses the sink — a broken escape hatch must not be able
        // to excuse itself.
        for line in &file.malformed_suppressions {
            sink.findings.push(Diagnostic::new(
                rel,
                *line,
                "suppression",
                "malformed `fedmp-analysis:` directive; the form is \
                 `// fedmp-analysis: allow(<lint>) -- <reason>` and the reason is mandatory",
            ));
        }
        // Unknown lint names in suppressions are typos that silently
        // suppress nothing — flag them too.
        for (idx, line) in file.lines.iter().enumerate() {
            for s in &line.suppressions {
                if !lints::LINT_NAMES.contains(&s.lint.as_str()) {
                    sink.findings.push(Diagnostic::new(
                        rel,
                        idx + 1,
                        "suppression",
                        format!(
                            "`allow({})` names no known lint; known lints: {}",
                            s.lint,
                            lints::LINT_NAMES.join(", ")
                        ),
                    ));
                }
            }
        }

        if let Some(cfg) = config.lints.get(lints::determinism::NAME) {
            if cfg.applies_to(rel) {
                lints::determinism::check(file, cfg, &mut sink);
            }
        }
        if let Some(cfg) = config.lints.get(lints::float_reduction::NAME) {
            if cfg.applies_to(rel) {
                lints::float_reduction::check(file, cfg, &mut sink);
            }
        }
        // Scope-only: this lint treats `allow` as "unsafe permitted
        // here (with SAFETY comments)", not "don't scan".
        if let Some(cfg) = config.lints.get(lints::unsafe_hygiene::NAME) {
            if cfg.in_scope(rel) {
                lints::unsafe_hygiene::check(file, cfg, &mut sink);
            }
        }
        if let Some(cfg) = config.lints.get(lints::no_panic::NAME) {
            if cfg.applies_to(rel) {
                lints::no_panic::check(file, cfg, &mut sink);
            }
        }
        if let Some(cfg) = config.lints.get(lints::executor_purity::NAME) {
            if cfg.applies_to(rel) {
                lints::executor_purity::check(file, sketch, &graph, cfg, &mut sink);
            }
        }
        if let Some(cfg) = config.lints.get(lints::channel_protocol::NAME) {
            if cfg.applies_to(rel) {
                lints::channel_protocol::check(file, sketch, cfg, &mut sink);
            }
        }
        if let Some(cfg) = config.lints.get(lints::reduction_escape::NAME) {
            if cfg.applies_to(rel) {
                lints::reduction_escape::check(file, sketch, &graph, cfg, &mut sink);
            }
        }
    }

    // Workspace-level cross-check (runs once, not per file). Its
    // findings are file-level, so it writes past the suppression
    // arbitration straight into the finding list.
    if let Some(cfg) = config.lints.get(lints::trace_schema::NAME) {
        lints::trace_schema::check(root, cfg, &mut sink.findings);
    }

    // Post-pass: with every sink-reporting lint done, `sink.used` is
    // complete and the audit can diff directives against it.
    if config.lints.contains_key(lints::suppression_audit::NAME) {
        let enabled: BTreeSet<String> = config.lints.keys().cloned().collect();
        let refs: Vec<&SourceFile> = scanned.iter().collect();
        lints::suppression_audit::check(&refs, &enabled, &mut sink);
        audit_config_allows(config, &scanned, &mut sink);
    }

    let Sink { mut findings, used } = sink;
    diagnostics::sort(&mut findings);
    let mut lints_run: Vec<String> = config.lints.keys().cloned().collect();
    lints_run.push("suppression".to_string());
    lints_run.sort();
    lints_run.dedup();
    let summary: Vec<LintStat> = lints_run
        .iter()
        .map(|l| LintStat {
            lint: l.clone(),
            findings: findings.iter().filter(|d| &d.lint == l).count(),
            suppressions_used: used.iter().filter(|(_, _, lint)| lint == l).count(),
        })
        .collect();
    Ok(Outcome { diagnostics: findings, files_scanned, lints_run, summary })
}

/// The config half of the suppression audit: an `allow` entry in
/// `analysis.toml` is live only while the lint it excuses would still
/// find something under that path. For each auditable lint, rerun it
/// into a scratch sink over the allowlisted files; entries whose
/// files produce zero candidates excuse nothing and are findings.
/// `unsafe-hygiene` is excluded — its allow list means "unsafe
/// permitted here", a grant that stays meaningful while the file
/// exists (and config-path validation already guarantees that).
/// A per-file lint pass, as rerun by the suppression audit.
type LintFn = fn(&SourceFile, &config::LintConfig, &mut Sink);

fn audit_config_allows(config: &Config, scanned: &[SourceFile], sink: &mut Sink) {
    let auditable: [(&str, LintFn); 3] = [
        (lints::determinism::NAME, lints::determinism::check),
        (lints::float_reduction::NAME, lints::float_reduction::check),
        (lints::no_panic::NAME, lints::no_panic::check),
    ];
    for (name, run) in auditable {
        let Some(cfg) = config.lints.get(name) else { continue };
        for entry in &cfg.allow {
            let mut scratch = Sink::new();
            for file in scanned {
                if config::path_has_prefix(&file.path, entry) && cfg.in_scope(&file.path) {
                    run(file, cfg, &mut scratch);
                }
            }
            if scratch.findings.is_empty() && scratch.used.is_empty() {
                sink.findings.push(Diagnostic::new(
                    "analysis.toml",
                    0,
                    lints::suppression_audit::NAME,
                    format!(
                        "`lints.{name}.allow` entry `{entry}` excuses nothing: the lint \
                         finds no candidate under that path — delete the entry (the escape \
                         is a standing invitation to reintroduce the violation silently)"
                    ),
                ));
            }
        }
    }
}
