//! L7 — channel-protocol hygiene.
//!
//! The threaded runtime's join guarantee (PR 5) is structural: a
//! `thread::scope` only returns once every spawned thread exits, and
//! a spawned thread only exits once the channel protocol lets it —
//! so every exit path of the scope body must drop its channel
//! endpoints *before the scope ends*, or a parked peer deadlocks the
//! join. This lint machine-checks that shape in the runtime files.
//! For each spawn-bearing `thread::scope(...)` extent it reconstructs
//! the channels declared at the body's top level (`let (tx, rx) =
//! bounded/unbounded/channel(...)`), tracks `.clone()` aliases and
//! sender containers (`Vec<Sender<_>>` bindings, plus anything a
//! sender is `.push`ed or index-assigned into), and then requires:
//!
//! - **receiver teardown**: when a sender (or an alias of it) moves
//!   into a spawn, the caller-side receiver must be `drop(...)`ed at
//!   top level (or itself move into a spawn) — otherwise a worker
//!   blocked on `send` never observes disconnect;
//! - **sender teardown**: when the receiver moves into a spawn, every
//!   caller-side sender residue — the original name, each alias, and
//!   each container holding one — must be `drop(...)`ed at top level,
//!   or a worker blocked on `recv` never observes disconnect;
//! - **no self-deadlock recv**: a top-level `.recv(` on a receiver
//!   whose paired sender never reaches any spawn can only be fed by
//!   the very thread that is now blocking on it;
//! - **no early exit**: a `?` or `return` in the scope body's
//!   top-level statement position (outside every nested call,
//!   including the sanctioned immediately-invoked fallible closure)
//!   jumps past the teardown drops. Capture the error and fall
//!   through instead — the `(|| -> Result<..> { ... })()` pattern the
//!   runtime uses.
//!
//! Heuristic limits: channels created and consumed entirely inside
//! helper functions are out of view (the scope files keep creation at
//! scope top level by convention), and sender containers are tracked
//! by name, not dataflow. Both directions fail loud, not silent: a
//! missed drop is a finding, and a false positive takes a reasoned
//! suppression on the channel's `let (` line.

use std::collections::BTreeSet;

use crate::config::LintConfig;
use crate::diagnostics::Sink;
use crate::scanner::SourceFile;
use crate::sketch::{Extent, Sketch};

pub const NAME: &str = "channel-protocol";

pub fn check(file: &SourceFile, sketch: &Sketch, _cfg: &LintConfig, out: &mut Sink) {
    for scope in sketch.call_extents("thread::scope(") {
        let spawns: Vec<Extent> =
            sketch.call_extents(".spawn(").into_iter().filter(|s| scope.contains(s)).collect();
        if spawns.is_empty() {
            continue;
        }
        // Top-level view: the scope body with spawn argument lists
        // blanked, so offsets still map back into the sketch text.
        let mut top: Vec<u8> = sketch.text[scope.start..scope.end].bytes().collect();
        for s in &spawns {
            for b in &mut top[s.start - scope.start..s.end - scope.start] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
        let top = String::from_utf8(top).expect("blanking is ascii-safe");
        let spawned_text: String =
            spawns.iter().map(|s| &sketch.text[s.start..s.end]).collect::<Vec<_>>().join("\n");

        let pairs = channel_pairs(&top);
        if pairs.is_empty() {
            continue;
        }
        let aliases = clone_aliases(&top, &pairs);
        let containers = sender_containers(&top, &pairs, &aliases);
        let drops = dropped_names(&top);

        for p in &pairs {
            let line = sketch.line_at(scope.start + p.offset);
            let mut senders: Vec<&str> = vec![p.tx.as_str()];
            senders.extend(aliases.iter().filter(|(_, of)| of == &p.tx).map(|(a, _)| a.as_str()));
            let sender_spawned = senders.iter().any(|s| token_in(&spawned_text, s));
            let rx_spawned = token_in(&spawned_text, &p.rx);

            if sender_spawned && !rx_spawned && !drops.contains(&p.rx) {
                out.report(
                    file,
                    line - 1,
                    NAME,
                    format!(
                        "receiver `{}` stays caller-side while `{}` moves into a spawned \
                         thread, but is never `drop(...)`ed at the scope's top level; a \
                         worker parked in `send` can then never observe disconnect and the \
                         scope join hangs — drop it on every exit path before the scope ends",
                        p.rx, p.tx
                    ),
                );
            }
            if rx_spawned {
                // Residues: the tx itself (unless consumed into a
                // container or moved into a spawn), aliases likewise,
                // and every container that received one.
                let consumed: BTreeSet<&str> = containers.iter().map(|(_, s)| s.as_str()).collect();
                let mut residue: Vec<&str> = senders
                    .iter()
                    .filter(|s| !consumed.contains(**s) && !token_in(&spawned_text, s))
                    .copied()
                    .collect();
                residue.extend(
                    containers
                        .iter()
                        .filter(|(_, s)| senders.contains(&s.as_str()))
                        .map(|(c, _)| c.as_str()),
                );
                for r in residue {
                    if !drops.contains(r) {
                        out.report(
                            file,
                            line - 1,
                            NAME,
                            format!(
                                "sender residue `{r}` (for receiver `{}`) is never \
                                 `drop(...)`ed at the scope's top level; a worker parked in \
                                 `recv` can then never observe disconnect and the scope join \
                                 hangs — drop every caller-side sender before the scope ends",
                                p.rx
                            ),
                        );
                    }
                }
            }
            if !sender_spawned {
                // A top-level recv on this receiver can only be fed by
                // the thread that is blocking on it.
                let needle = format!("{}.recv(", p.rx);
                if let Some(pos) = top.find(&needle) {
                    out.report(
                        file,
                        sketch.line_at(scope.start + pos) - 1,
                        NAME,
                        format!(
                            "`{}.recv(...)` but `{}` never moves into a spawned thread: the \
                             only sender is held by the thread now blocking on the receive — \
                             a structural self-deadlock",
                            p.rx, p.tx
                        ),
                    );
                }
            }
        }

        // Early exits at statement position (paren depth 0 within the
        // scope body) jump past every drop below them.
        for (pos, what) in early_exits(&top) {
            out.report(
                file,
                sketch.line_at(scope.start + pos) - 1,
                NAME,
                format!(
                    "`{what}` at the top level of a spawn-bearing scope body skips the \
                     channel teardown below it; capture the error and fall through to the \
                     drops instead (the `(|| -> Result<_, _> {{ ... }})()` pattern)"
                ),
            );
        }
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn token_in(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        from = at + 1;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

#[derive(Debug)]
struct ChannelPair {
    tx: String,
    rx: String,
    /// Offset of the `let (` in the top-level view.
    offset: usize,
}

/// `let (tx, rx) = bounded/unbounded/channel(...)` destructures.
fn channel_pairs(top: &str) -> Vec<ChannelPair> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = top[from..].find("let (") {
        let at = from + pos;
        from = at + 5;
        let inner = &top[at + 5..];
        let Some(close) = inner.find(')') else { continue };
        let names: Vec<&str> = inner[..close].split(',').map(str::trim).collect();
        if names.len() != 2 || names.iter().any(|n| n.is_empty()) {
            continue;
        }
        let rest = &inner[close + 1..];
        let Some(semi) = rest.find(';') else { continue };
        let rhs = &rest[..semi];
        if ["bounded", "unbounded", "channel"].iter().any(|t| token_in(rhs, t)) {
            out.push(ChannelPair {
                tx: names[0].to_string(),
                rx: names[1].to_string(),
                offset: at,
            });
        }
    }
    out
}

/// `let a = tx.clone();` aliases of known senders, to a fixpoint so
/// aliases of aliases resolve to the original sender.
fn clone_aliases(top: &str, pairs: &[ChannelPair]) -> Vec<(String, String)> {
    let mut aliases: Vec<(String, String)> = Vec::new();
    loop {
        let mut grew = false;
        let mut from = 0usize;
        while let Some(pos) = top[from..].find("let ") {
            let at = from + pos;
            from = at + 4;
            let rest = &top[at + 4..];
            let Some(eq) = rest.find('=') else { continue };
            let name = rest[..eq].trim().trim_start_matches("mut ").trim();
            if name.is_empty() || !name.bytes().all(is_ident_char) {
                continue;
            }
            let Some(semi) = rest[eq..].find(';') else { continue };
            let rhs = rest[eq + 1..eq + semi].trim();
            let Some(base) = rhs.strip_suffix(".clone()") else { continue };
            let resolves =
                pairs.iter().any(|p| p.tx == base) || aliases.iter().any(|(a, _)| a == base);
            if resolves && !aliases.iter().any(|(a, _)| a == name) {
                let root = aliases
                    .iter()
                    .find(|(a, _)| a == base)
                    .map(|(_, of)| of.clone())
                    .unwrap_or_else(|| base.to_string());
                aliases.push((name.to_string(), root));
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    aliases
}

/// `(container, sender)` links: a container annotated `Sender<`, or
/// any name a known sender is `.push(...)`ed or `[..] = ...`-assigned
/// into.
fn sender_containers(
    top: &str,
    pairs: &[ChannelPair],
    aliases: &[(String, String)],
) -> Vec<(String, String)> {
    let senders: Vec<&str> = pairs
        .iter()
        .map(|p| p.tx.as_str())
        .chain(aliases.iter().map(|(a, _)| a.as_str()))
        .collect();
    let mut out = Vec::new();
    let bytes = top.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if is_ident_char(bytes[i])
            && !bytes[i].is_ascii_digit()
            && (i == 0 || !is_ident_char(bytes[i - 1]))
        {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            let name = &top[start..i];
            // `c.push(<sender>...)`
            if top[i..].starts_with(".push(") {
                let args_start = i + ".push(".len();
                if let Some(close) = top[args_start..].find(')') {
                    let args = &top[args_start..args_start + close];
                    for s in &senders {
                        if token_in(args, s) {
                            out.push((name.to_string(), s.to_string()));
                        }
                    }
                }
            }
            // `c[...] = <sender>;`
            if top[i..].starts_with('[') {
                if let Some(close) = top[i..].find(']') {
                    let after = top[i + close + 1..].trim_start();
                    if let Some(rhs) = after.strip_prefix('=') {
                        if let Some(semi) = rhs.find(';') {
                            for s in &senders {
                                if token_in(&rhs[..semi], s) {
                                    out.push((name.to_string(), s.to_string()));
                                }
                            }
                        }
                    }
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Names appearing in top-level `drop(<name>)` calls.
fn dropped_names(top: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut from = 0usize;
    while let Some(pos) = top[from..].find("drop(") {
        let at = from + pos;
        from = at + 5;
        let bytes = top.as_bytes();
        if at > 0 && is_ident_char(bytes[at - 1]) {
            continue;
        }
        if let Some(close) = top[at + 5..].find(')') {
            let name = top[at + 5..at + 5 + close].trim().trim_start_matches('&');
            if name.bytes().all(is_ident_char) && !name.is_empty() {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// `?` / `return` at paren depth 0 of the (blanked) scope body. A `?`
/// after a closing paren is depth 0 — that is the escaping kind; one
/// inside any argument list (including the fallible-closure body) is
/// not. `?` in types (`?Sized`) is excluded by its `:`/`<` prefix.
fn early_exits(top: &str) -> Vec<(usize, &'static str)> {
    let bytes = top.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            b'?' if depth == 0 => {
                let prev = top[..i].trim_end().chars().next_back();
                if !matches!(prev, Some(':' | '<' | '+')) {
                    out.push((i, "?"));
                }
            }
            b'r' if depth == 0
                && top[i..].starts_with("return")
                && (i == 0 || !is_ident_char(bytes[i - 1]))
                && bytes.get(i + 6).map(|c| !is_ident_char(*c)).unwrap_or(true) =>
            {
                out.push((i, "return"));
                i += 5;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use crate::sketch::Sketch;

    fn run(src: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let file = scan("crates/fl/src/runtime.rs", src);
        let sketch = Sketch::build(&file);
        let mut out = Sink::new();
        check(&file, &sketch, &LintConfig::default(), &mut out);
        out.findings
    }

    const GOOD: &str = "\
pub fn run(n: usize) {\n\
    std::thread::scope(|scope| {\n\
        let (up_tx, up_rx) = bounded::<u32>(4);\n\
        let mut downlinks: Vec<Sender<u32>> = Vec::new();\n\
        for w in 0..n {\n\
            let (down_tx, down_rx) = bounded::<u32>(2);\n\
            downlinks.push(down_tx);\n\
            let utx = up_tx.clone();\n\
            scope.spawn(move || worker(w, down_rx, utx));\n\
        }\n\
        let outcome = (|| -> Result<(), E> {\n\
            let v = up_rx.recv()?;\n\
            handle(v)?;\n\
            Ok(())\n\
        })();\n\
        drop(downlinks);\n\
        drop(up_rx);\n\
        outcome\n\
    });\n\
}\n";

    #[test]
    fn the_sanctioned_runtime_shape_is_clean() {
        assert!(run(GOOD).is_empty(), "{:?}", run(GOOD));
    }

    #[test]
    fn missing_receiver_drop_is_flagged_on_the_channel_line() {
        let src = GOOD.replace("drop(up_rx);\n", "");
        let out = run(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("`up_rx`"));
    }

    #[test]
    fn missing_sender_container_drop_is_flagged() {
        let src = GOOD.replace("drop(downlinks);\n", "");
        let out = run(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 6, "anchored at the downlink channel declaration");
        assert!(out[0].message.contains("`downlinks`"));
    }

    #[test]
    fn recv_with_unspawned_sender_is_a_self_deadlock() {
        let src = "\
pub fn run() {\n\
    std::thread::scope(|scope| {\n\
        let (cmd_tx, cmd_rx) = bounded::<u32>(1);\n\
        scope.spawn(move || work());\n\
        let c = cmd_rx.recv();\n\
        drop(cmd_tx);\n\
        drop(cmd_rx);\n\
        c\n\
    });\n\
}\n";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("self-deadlock"));
    }

    #[test]
    fn top_level_question_mark_is_an_early_exit() {
        let src = GOOD.replace(
            "let outcome = (|| -> Result<(), E> {\n",
            "early(up_rx.recv())?;\nlet outcome = (|| -> Result<(), E> {\n",
        );
        let out = run(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("skips the channel teardown"));
    }

    #[test]
    fn scopes_without_channels_or_spawns_are_ignored() {
        let out = run(
            "pub fn f() {\n    std::thread::scope(|s| {\n        s.spawn(|| work());\n        compute()\n    });\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
