//! L1 — determinism.
//!
//! The reproduction's headline contract is that a run is a pure
//! function of its seed: same seed ⇒ bit-identical history at any
//! `FEDMP_THREADS`. The crates on the simulation path therefore must
//! not consult anything the seed does not control. This lint bans the
//! usual leaks at the token level:
//!
//! - `HashMap` / `HashSet`: iteration order is randomized per process
//!   (SipHash keys), so any loop over one is a nondeterminism bomb.
//!   Use `BTreeMap` / `BTreeSet` or `Vec`.
//! - `std::time`, `Instant`, `SystemTime`: wall-clock reads. Simulated
//!   time comes from the edge-sim cost model, never from the host.
//! - `thread::current`: thread identity varies run to run.
//! - `env::var` and friends, `env::args`: ambient configuration that
//!   bypasses the `ExperimentSpec`.
//! - `thread_rng` / `from_entropy`: OS-seeded randomness; all RNGs must
//!   derive from the experiment seed.

use crate::config::LintConfig;
use crate::diagnostics::Sink;
use crate::scanner::{contains_token, SourceFile};

pub const NAME: &str = "determinism";

/// Token → explanation. Matching is token-boundary aware on the
/// comment/string-stripped code, so mentions in docs or messages never
/// fire.
const BANNED: &[(&str, &str)] = &[
    (
        "HashMap",
        "HashMap iteration order is randomized per process; use BTreeMap (or a Vec) so \
         traversal order is a function of the data, not the hasher seed",
    ),
    (
        "HashSet",
        "HashSet iteration order is randomized per process; use BTreeSet (or a sorted Vec)",
    ),
    (
        "std::time",
        "wall-clock time is not seed-controlled; simulated time must come from the cost model",
    ),
    ("Instant", "Instant reads the host clock; results must be a pure function of the seed"),
    ("SystemTime", "SystemTime reads the host clock; results must be a pure function of the seed"),
    (
        "thread::current",
        "thread identity varies between runs and thread counts; deterministic code must not \
         observe it",
    ),
    (
        "env::var",
        "environment reads bypass the ExperimentSpec; thread config via env is only \
         permitted in the allowlisted scheduler entry point",
    ),
    ("env::var_os", "environment reads bypass the ExperimentSpec"),
    ("env::vars", "environment reads bypass the ExperimentSpec"),
    ("env::args", "process arguments are ambient input; deterministic crates take explicit specs"),
    (
        "thread_rng",
        "thread_rng is OS-seeded; every RNG on the simulation path must derive from the \
         experiment seed",
    ),
    (
        "from_entropy",
        "from_entropy pulls OS randomness; seed RNGs explicitly from the experiment seed",
    ),
];

/// Runs the lint over one file already known to be in scope.
pub fn check(file: &SourceFile, _cfg: &LintConfig, out: &mut Sink) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (token, why) in BANNED {
            if contains_token(&line.code, token) {
                out.report(file, idx, NAME, format!("`{token}` in deterministic code: {why}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn run(src: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let file = scan("crates/fl/src/x.rs", src);
        let mut out = Sink::new();
        check(&file, &LintConfig::default(), &mut out);
        out.findings
    }

    #[test]
    fn flags_hashmap_and_clock_reads() {
        let out = run("use std::collections::HashMap;\nlet t = Instant::now();\n");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].line, 1);
        assert!(out[0].message.contains("BTreeMap"));
        assert_eq!(out[1].line, 2);
    }

    #[test]
    fn ignores_tests_comments_strings_and_suppressed_lines() {
        let src = "\
// HashMap is fine to mention here\n\
let s = \"HashMap\";\n\
// fedmp-analysis: allow(determinism) -- documented escape hatch\n\
let v = std::env::var(\"FEDMP_TRACE\");\n\
#[cfg(test)]\nmod tests {\n    fn t() { let m = HashMap::new(); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn token_boundaries_prevent_substring_hits() {
        assert!(run("struct HashMapLike; fn instant_rate() {}\n").is_empty());
    }
}
