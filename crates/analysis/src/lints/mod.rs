//! The lint implementations.
//!
//! Each lint is a free function taking the scanned file and its
//! [`LintConfig`](crate::config::LintConfig), pushing
//! [`Diagnostic`](crate::diagnostics::Diagnostic)s for every finding.
//! The driver in `lib.rs` decides which lints run (a lint runs iff its
//! `[lints.<name>]` table exists in `analysis.toml`) and which files
//! each one sees.

pub mod channel_protocol;
pub mod determinism;
pub mod executor_purity;
pub mod float_reduction;
pub mod no_panic;
pub mod reduction_escape;
pub mod suppression_audit;
pub mod trace_schema;
pub mod unsafe_hygiene;

/// Canonical lint names, as they appear in `analysis.toml` and in
/// `allow(...)` suppressions.
pub const LINT_NAMES: [&str; 10] = [
    "channel-protocol",
    "determinism",
    "executor-purity",
    "float-reduction",
    "no-panic",
    "reduction-escape",
    "suppression",
    "suppression-audit",
    "trace-schema",
    "unsafe-hygiene",
];
