//! L2 — float-reduction order.
//!
//! Float addition is not associative, so the *order* of a sum is part
//! of the result. The determinism contract (same seed ⇒ bit-identical
//! history at any thread count) therefore requires every float
//! reduction to have one fixed order. The workspace funnels them
//! through `fedmp_tensor::parallel::{sum_f32, sum_f64}` — strict
//! left-to-right folds — and this lint flags ad-hoc reductions that
//! bypass the funnel:
//!
//! - `.sum::<f32>()` / `.sum::<f64>()` and the `product` variants;
//! - untyped `.sum()` / `.product()` on a line that ascribes `f32` /
//!   `f64` to the accumulator;
//! - `.fold(` with a float-literal (or `f32::`/`f64::` constant) seed,
//!   *unless* the same line folds through `f32::max` / `f32::min` /
//!   `f64::max` / `f64::min` — max/min are order-insensitive, so those
//!   reductions are exempt.
//!
//! This is a token-level heuristic, not a type checker: a multi-line
//! fold over floats with an integer-looking seed can slip through. The
//! backstop is the runtime equivalence tests; the lint exists to catch
//! the overwhelmingly common single-line forms at review time.

use crate::config::LintConfig;
use crate::diagnostics::Sink;
use crate::scanner::SourceFile;

pub const NAME: &str = "float-reduction";

const TYPED_CALLS: &[&str] =
    &[".sum::<f32>(", ".sum::<f64>(", ".product::<f32>(", ".product::<f64>("];

const ORDER_INSENSITIVE: &[&str] = &["f32::max", "f32::min", "f64::max", "f64::min"];

pub fn check(file: &SourceFile, _cfg: &LintConfig, out: &mut Sink) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = compact(&line.code);
        let mut flag: Option<String> = None;
        if let Some(call) = TYPED_CALLS.iter().find(|c| code.contains(**c)) {
            flag = Some(format!(
                "`{}...)` reduces floats in iterator order",
                call.trim_end_matches('(')
            ));
        } else if (code.contains(".sum()") || code.contains(".product()"))
            && (code.contains(":f32") || code.contains(":f64"))
        {
            flag = Some("float-typed `.sum()`/`.product()` reduces in iterator order".to_string());
        } else if let Some(pos) = find_float_fold(&code) {
            if !ORDER_INSENSITIVE.iter().any(|f| code[pos..].contains(f)) {
                flag = Some(
                    "`.fold(...)` with a float accumulator fixes no reduction discipline"
                        .to_string(),
                );
            }
        }
        if let Some(what) = flag {
            out.report(
                file,
                idx,
                NAME,
                format!(
                    "{what}; float addition is non-associative, so route the reduction \
                     through `fedmp_tensor::parallel::sum_f32`/`sum_f64` (fixed left-to-right \
                     order) to keep results bit-identical across refactors"
                ),
            );
        }
    }
}

/// Whitespace-free view so `. sum ::< f32 >()` spacing can't dodge the
/// pattern match.
fn compact(code: &str) -> String {
    code.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Finds `.fold(` whose first argument looks like a float seed: a
/// numeric literal containing `.` or an `f32`/`f64` suffix, or an
/// `f32::` / `f64::` associated constant. Returns the offset just past
/// `.fold(` when it matches.
fn find_float_fold(code: &str) -> Option<usize> {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(".fold(") {
        let arg_at = start + pos + ".fold(".len();
        let arg = &code[arg_at..];
        let seed: String = arg.chars().take_while(|c| *c != ',' && *c != ')').collect();
        if is_float_seed(&seed) {
            return Some(arg_at);
        }
        start = arg_at;
    }
    None
}

fn is_float_seed(seed: &str) -> bool {
    if seed.starts_with("f32::") || seed.starts_with("f64::") {
        return true;
    }
    let mut s = seed;
    if let Some(rest) = s.strip_prefix('-') {
        s = rest;
    }
    if !s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return false;
    }
    s.contains('.') || s.ends_with("f32") || s.ends_with("f64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn run(src: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let file = scan("crates/fl/src/x.rs", src);
        let mut out = Sink::new();
        check(&file, &LintConfig::default(), &mut out);
        out.findings
    }

    #[test]
    fn flags_typed_sum_and_float_fold() {
        let out = run("let a = xs.iter().sum::<f32>();\nlet b = xs.iter().fold(0.0f32, |m, v| m + v);\nlet c: f64 = ys.iter().sum();\n");
        assert_eq!(out.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(out[0].message.contains("sum_f32"));
    }

    #[test]
    fn max_min_folds_and_integer_folds_are_exempt() {
        let out = run(
            "let m = xs.iter().map(|v| v.abs()).fold(0.0f32, f32::max);\nlet n = xs.iter().fold(0usize, |a, _| a + 1);\nlet o = f64::NEG_INFINITY; let p = ys.fold(f64::NEG_INFINITY, f64::max);\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn suppression_and_tests_are_honored() {
        let out = run(
            "// fedmp-analysis: allow(float-reduction) -- this is the reducer itself\nlet s = xs.into_iter().fold(0.0f32, |acc, v| acc + v);\n#[cfg(test)]\nmod tests { fn t() { let x: f32 = v.iter().sum(); } }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
