//! L8 — reduction escape.
//!
//! The float-reduction lint (L2) bans `.sum()` / `.fold()` over float
//! iterators line-by-line, but it can only see a float when one is
//! named on the line. A helper that returns
//! `impl Iterator<Item = f32>` launders the type away: at the call
//! site `deltas(xs).sum::<f32>()` looks like any other reduction over
//! an opaque iterator, and L2 only catches it when the turbofish
//! happens to name the float. This lint closes the hole with the
//! call-summary pass: for every in-crate function the sketch indexed
//! as returning `impl Iterator<Item = f32|f64>`, it finds call sites
//! and walks the method chain hanging off them. `sum` / `product`
//! anywhere down the chain — including through adapters like `.map()`
//! or `.filter()` — is a finding; `fold` is one unless its arguments
//! use the order-insensitive `f32::max`-family combiners L2 also
//! exempts. The remedy is the same as L2's: route the values through
//! `fedmp_tensor::parallel::sum_f32` / `sum_f64` (pairwise, split
//! order fixed) instead of folding in iterator order.
//!
//! Like the call graph itself, matching is identifier-based within
//! one crate: a same-named function imported from another crate
//! over-approximates (flags where it should not) — suppress with a
//! reasoned `allow(reduction-escape)` in that case.

use crate::callgraph::{crate_key, CrateGraph};
use crate::config::LintConfig;
use crate::diagnostics::Sink;
use crate::scanner::SourceFile;
use crate::sketch::Sketch;

pub const NAME: &str = "reduction-escape";

const ORDER_FREE: &[&str] = &["f32::max", "f32::min", "f64::max", "f64::min"];

pub fn check(
    file: &SourceFile,
    sketch: &Sketch,
    graph: &CrateGraph,
    _cfg: &LintConfig,
    out: &mut Sink,
) {
    let ckey = crate_key(&file.path);
    for helper in graph.float_iter_fns(&ckey) {
        let needle = format!("{helper}(");
        for ext in sketch.call_extents(&needle) {
            // Skip the definition itself: `fn deltas(`.
            let before = sketch.text[..ext.start - needle.len()].trim_end();
            if before.ends_with("fn") {
                continue;
            }
            let call_line = sketch.line_at(ext.start);
            if file.lines.get(call_line - 1).is_some_and(|l| l.in_test) {
                continue;
            }
            if let Some(red) = chain_reduction(&sketch.text, ext.end + 1) {
                out.report(
                    file,
                    call_line - 1,
                    NAME,
                    format!(
                        "`{helper}(...)` returns `impl Iterator<Item = f32/f64>` and the \
                         call chain ends in `.{red}(...)` — an iteration-order-sensitive \
                         float reduction L2 cannot see through the helper; use \
                         `fedmp_tensor::parallel::sum_f32`/`sum_f64` on the collected \
                         values instead"
                    ),
                );
            }
        }
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Walks the method chain starting right after a call's closing `)`
/// (at byte `from`): `.ident`, optional turbofish, `(args)`, repeat.
/// Returns the reducing method name when the chain hits one.
fn chain_reduction(text: &str, mut from: usize) -> Option<&'static str> {
    let bytes = text.as_bytes();
    loop {
        // Skip whitespace between chain links (multi-line chains).
        while from < bytes.len() && (bytes[from] as char).is_whitespace() {
            from += 1;
        }
        if bytes.get(from) != Some(&b'.') {
            return None;
        }
        from += 1;
        let name_start = from;
        while from < bytes.len() && is_ident_char(bytes[from]) {
            from += 1;
        }
        if from == name_start {
            return None; // `.0`, `.await` handled as idents; bare `.` is not
        }
        let name = &text[name_start..from];
        // Optional turbofish: `sum::<f32>(`.
        if bytes.get(from) == Some(&b':') && bytes.get(from + 1) == Some(&b':') {
            if bytes.get(from + 2) == Some(&b'<') {
                match crate::sketch::match_angle(text, from + 2) {
                    Some(close) => from = close + 1,
                    None => return None,
                }
            } else {
                return None;
            }
        }
        if bytes.get(from) != Some(&b'(') {
            // Field access / `.await` — the chain continues only if a
            // call follows, which the next loop turn would need a `(`
            // for; treat as end of chain.
            return None;
        }
        let close = crate::sketch::match_paren(text, from)?;
        match name {
            "sum" | "product" => return Some(if name == "sum" { "sum" } else { "product" }),
            "fold" => {
                let args = &text[from + 1..close];
                if ORDER_FREE.iter().any(|t| args.contains(t)) {
                    return None;
                }
                return Some("fold");
            }
            _ => {
                from = close + 1; // adapter — keep walking the chain
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use crate::sketch::Sketch;

    fn run(src: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let path = "crates/fl/src/h.rs";
        let file = scan(path, src);
        let sketch = Sketch::build(&file);
        let graph = crate::callgraph::build(&[(path.to_string(), Sketch::build(&file))]);
        let mut out = Sink::new();
        check(&file, &sketch, &graph, &LintConfig::default(), &mut out);
        out.findings
    }

    const HELPER: &str =
        "pub fn deltas(xs: &[f32]) -> impl Iterator<Item = f32> + '_ {\n    xs.iter().copied()\n}\n";

    #[test]
    fn sum_at_the_call_site_is_flagged() {
        let src = format!(
            "{HELPER}pub fn total(xs: &[f32]) -> f32 {{\n    deltas(xs).sum::<f32>()\n}}\n"
        );
        let out = run(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("`deltas(...)`"));
    }

    #[test]
    fn reductions_through_adapters_are_still_caught() {
        let src = format!(
            "{HELPER}pub fn total(xs: &[f32]) -> f32 {{\n    deltas(xs)\n        .map(|v| v * v)\n        .filter(|v| *v > 0.0)\n        .sum()\n}}\n"
        );
        let out = run(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5, "anchored at the helper call, not the distant .sum()");
    }

    #[test]
    fn order_free_folds_and_collects_are_clean() {
        let src = format!(
            "{HELPER}pub fn peak(xs: &[f32]) -> f32 {{\n    deltas(xs).fold(f32::MIN, f32::max)\n}}\npub fn gather(xs: &[f32]) -> Vec<f32> {{\n    deltas(xs).collect()\n}}\n"
        );
        assert!(run(&src).is_empty(), "{:?}", run(&src));
    }

    #[test]
    fn definition_and_test_code_are_exempt() {
        let src = format!(
            "{HELPER}#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{\n        assert_eq!(super::deltas(&[1.0]).sum::<f32>(), 1.0);\n    }}\n}}\n"
        );
        assert!(run(&src).is_empty(), "{:?}", run(&src));
    }
}
