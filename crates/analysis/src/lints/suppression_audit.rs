//! L9 — suppression audit.
//!
//! Escape hatches rot: the code a `// fedmp-analysis: allow(<lint>)`
//! once excused gets refactored away, and the directive stays behind
//! as a standing invitation to reintroduce the violation silently.
//! This lint closes the loop using the sink's bookkeeping: every lint
//! that reports through [`Sink::report`](crate::diagnostics::Sink)
//! records `(file, directive line, lint)` whenever a suppression
//! absorbs a finding, so after all lints have run, any well-formed
//! directive *not* in that set provably suppressed nothing this run —
//! delete it, or restore the code it excused.
//!
//! Only directives for lints that (a) actually ran and (b) arbitrate
//! suppressions through the sink are auditable; `trace-schema`
//! (workspace-level, no line suppression) and the `suppression` meta
//! lint (malformed directives are its findings, not suppressible
//! ones) are excluded. Directives for this lint itself are audited in
//! a second pass, after the first pass has recorded which
//! `allow(suppression-audit)` escapes absorbed a dead-directive
//! finding — otherwise the audit could mark its own escape dead
//! purely by iteration order.
//!
//! The companion config audit (dead `allow` *entries* in
//! `analysis.toml`) lives in the driver, which has the scratch-run
//! machinery; this module only audits inline directives.

use std::collections::BTreeSet;

use crate::diagnostics::Sink;
use crate::scanner::SourceFile;

pub const NAME: &str = "suppression-audit";

/// Lints whose directives can never be "used" through the sink.
const UNAUDITABLE: &[&str] = &["suppression", "trace-schema"];

pub fn check(files: &[&SourceFile], enabled: &BTreeSet<String>, sink: &mut Sink) {
    for self_pass in [false, true] {
        for file in files {
            for d in &file.directives {
                if !d.reason_ok || (d.lint == NAME) != self_pass {
                    continue;
                }
                if UNAUDITABLE.contains(&d.lint.as_str()) || !enabled.contains(&d.lint) {
                    continue;
                }
                let key = (file.path.clone(), d.line, d.lint.clone());
                if !sink.used.contains(&key) {
                    sink.report(
                        file,
                        d.line - 1,
                        NAME,
                        format!(
                            "`allow({})` on this line suppressed nothing this run — the code \
                             it excused is gone; delete the directive (or restore what it \
                             excused)",
                            d.lint
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;
    use crate::scanner::scan;

    fn enabled() -> BTreeSet<String> {
        ["determinism", "no-panic", NAME].iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn dead_directives_are_flagged_and_live_ones_are_not() {
        let src = "\
// fedmp-analysis: allow(determinism) -- still excuses the env read below\n\
let v = std::env::var(\"X\");\n\
let n = 1; // fedmp-analysis: allow(no-panic) -- nothing panics here anymore\n";
        let file = scan("crates/fl/src/x.rs", src);
        let mut sink = Sink::new();
        crate::lints::determinism::check(&file, &LintConfig::default(), &mut sink);
        crate::lints::no_panic::check(&file, &LintConfig::default(), &mut sink);
        check(&[&file], &enabled(), &mut sink);
        let audits: Vec<_> = sink.findings.iter().filter(|d| d.lint == NAME).collect();
        assert_eq!(audits.len(), 1, "{audits:?}");
        assert_eq!(audits[0].line, 3);
        assert!(audits[0].message.contains("allow(no-panic)"));
    }

    #[test]
    fn directives_for_lints_that_did_not_run_are_left_alone() {
        let src = "let n = 1; // fedmp-analysis: allow(no-panic) -- lint disabled here\n";
        let file = scan("crates/fl/src/x.rs", src);
        let mut sink = Sink::new();
        let only_self: BTreeSet<String> = [NAME.to_string()].into_iter().collect();
        check(&[&file], &only_self, &mut sink);
        assert!(sink.findings.is_empty(), "{:?}", sink.findings);
    }

    #[test]
    fn the_audit_escape_hatch_works_and_is_not_self_flagged() {
        let src = "\
// fedmp-analysis: allow(suppression-audit) -- migration in flight, directive returns next PR\n\
let n = 1; // fedmp-analysis: allow(no-panic) -- excuses code landing in the follow-up\n";
        let file = scan("crates/fl/src/x.rs", src);
        let mut sink = Sink::new();
        crate::lints::no_panic::check(&file, &LintConfig::default(), &mut sink);
        check(&[&file], &enabled(), &mut sink);
        // The dead no-panic directive was absorbed by the audit escape,
        // and the escape itself counts as used — nothing reported.
        assert!(sink.findings.is_empty(), "{:?}", sink.findings);
        assert!(sink.used.contains(&("crates/fl/src/x.rs".into(), 1, NAME.into())));
    }

    #[test]
    fn malformed_directives_are_not_double_reported() {
        let src = "let v = std::env::var(\"X\"); // fedmp-analysis: allow(determinism)\n";
        let file = scan("crates/fl/src/x.rs", src);
        let mut sink = Sink::new();
        crate::lints::determinism::check(&file, &LintConfig::default(), &mut sink);
        check(&[&file], &enabled(), &mut sink);
        // Reasonless directive: the suppression meta lint owns that
        // finding; the audit stays silent about it.
        assert!(sink.findings.iter().all(|d| d.lint != NAME), "{:?}", sink.findings);
    }
}
