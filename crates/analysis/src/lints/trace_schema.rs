//! L5 — trace-schema drift.
//!
//! The observability layer promises that `docs/TRACE_SCHEMA.md` is the
//! authoritative description of the trace stream: external tooling
//! (including the trace-diff tool) is written against it. The enum and
//! the document drift independently, so this lint cross-checks them:
//! every kind listed in `TraceEvent::KINDS` must appear as a backticked
//! name in a `### ` heading of the schema doc, and every backticked
//! kind in a heading must exist in `KINDS`.
//!
//! This lint reads the two files named by its config keys
//! (`event-enum`, `schema-doc`) directly — it needs the *string
//! literals* of the `KINDS` array, which the stripped scanner view
//! deliberately blanks.

use std::path::Path;

use crate::config::LintConfig;
use crate::diagnostics::Diagnostic;

pub const NAME: &str = "trace-schema";

pub fn check(root: &Path, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let Some(enum_path) = cfg.keys.get("event-enum") else {
        out.push(Diagnostic::new(
            "analysis.toml",
            0,
            NAME,
            "missing `event-enum` key in [lints.trace-schema]",
        ));
        return;
    };
    let Some(doc_path) = cfg.keys.get("schema-doc") else {
        out.push(Diagnostic::new(
            "analysis.toml",
            0,
            NAME,
            "missing `schema-doc` key in [lints.trace-schema]",
        ));
        return;
    };
    let Ok(enum_src) = std::fs::read_to_string(root.join(enum_path)) else {
        out.push(Diagnostic::new(enum_path, 0, NAME, "event-enum file not found or unreadable"));
        return;
    };
    let Ok(doc_src) = std::fs::read_to_string(root.join(doc_path)) else {
        out.push(Diagnostic::new(doc_path, 0, NAME, "schema-doc file not found or unreadable"));
        return;
    };

    let Some((kinds, kinds_line)) = extract_kinds(&enum_src) else {
        out.push(Diagnostic::new(
            enum_path,
            0,
            NAME,
            "could not find a `const KINDS` string array in the event-enum file",
        ));
        return;
    };
    let documented = extract_headings(&doc_src);

    for kind in &kinds {
        if !documented.iter().any(|(k, _)| k == kind) {
            out.push(Diagnostic::new(
                enum_path,
                kinds_line,
                NAME,
                format!(
                    "trace event kind `{kind}` is not documented in {doc_path}; add a \
                     `### \u{60}{kind}\u{60}` section describing its fields"
                ),
            ));
        }
    }
    for (kind, line) in &documented {
        if !kinds.contains(kind) {
            out.push(Diagnostic::new(
                doc_path,
                *line,
                NAME,
                format!(
                    "{doc_path} documents `{kind}` but TraceEvent::KINDS has no such kind; \
                     remove the section or add the variant"
                ),
            ));
        }
    }
}

/// Pulls the string literals out of the `const KINDS` array, plus the
/// 1-indexed line where the array starts.
fn extract_kinds(src: &str) -> Option<(Vec<String>, usize)> {
    let pos = src.find("const KINDS")?;
    let line = src[..pos].lines().count().max(1);
    let after_eq = &src[pos..][src[pos..].find('=')? + 1..];
    let open = after_eq.find('[')?;
    let body = &after_eq[open + 1..];
    let close = body.find(']')?;
    let mut kinds = Vec::new();
    let mut rest = &body[..close];
    while let Some(q1) = rest.find('"') {
        let tail = &rest[q1 + 1..];
        let q2 = tail.find('"')?;
        kinds.push(tail[..q2].to_string());
        rest = &tail[q2 + 1..];
    }
    if kinds.is_empty() {
        None
    } else {
        Some((kinds, line))
    }
}

/// Backticked CamelCase identifiers in `### ` headings, with their
/// 1-indexed lines. One heading may list several kinds (the fault pair
/// shares a section).
fn extract_headings(doc: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        let Some(rest) = line.strip_prefix("### ") else {
            continue;
        };
        let mut parts = rest.split('`');
        // Odd-indexed fragments are inside backticks.
        parts.next();
        while let (Some(inner), _) = (parts.next(), parts.next()) {
            if is_camel_ident(inner) {
                out.push((inner.to_string(), idx + 1));
            }
        }
    }
    out
}

fn is_camel_ident(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.chars().all(|c| c.is_ascii_alphanumeric())
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENUM_SRC: &str = "impl TraceEvent {\n    pub const KINDS: [&'static str; 3] = [\n        \"RoundStart\",\n        \"Aggregate\",\n        \"RoundEnd\",\n    ];\n}\n";

    #[test]
    fn extracts_kinds_and_headings() {
        let (kinds, line) = extract_kinds(ENUM_SRC).unwrap();
        assert_eq!(kinds, vec!["RoundStart", "Aggregate", "RoundEnd"]);
        assert_eq!(line, 2);
        let doc = "# Schema\n### `RoundStart`\ntext\n### `FaultInjected` / `FaultRecovered`\n### not `a_kind` here\n";
        let heads = extract_headings(doc);
        assert_eq!(
            heads,
            vec![
                ("RoundStart".to_string(), 2),
                ("FaultInjected".to_string(), 4),
                ("FaultRecovered".to_string(), 4),
            ]
        );
    }

    #[test]
    fn drift_is_reported_in_both_directions() {
        let dir = std::env::temp_dir().join("fedmp-analysis-trace-schema-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("event.rs"), ENUM_SRC).unwrap();
        std::fs::write(dir.join("schema.md"), "### `RoundStart`\n### `Aggregate`\n### `Bogus`\n")
            .unwrap();
        let mut cfg = LintConfig::default();
        cfg.keys.insert("event-enum".into(), "event.rs".into());
        cfg.keys.insert("schema-doc".into(), "schema.md".into());
        let mut out = Vec::new();
        check(&dir, &cfg, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|d| d.message.contains("`RoundEnd` is not documented")));
        assert!(out.iter().any(|d| d.message.contains("`Bogus`") && d.line == 3));
    }
}
