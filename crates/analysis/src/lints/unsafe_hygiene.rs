//! L3 — unsafe hygiene.
//!
//! Only the band scheduler in `fedmp-tensor` is allowed to contain
//! `unsafe` (it hands out disjoint raw-parts slices to worker
//! threads); every other crate carries `#![forbid(unsafe_code)]`. This
//! lint enforces the same rule statically across the whole tree —
//! including code the compiler might not currently build (cfg'd-out
//! modules, examples) — and additionally requires every `unsafe`
//! occurrence in the allowlisted files to carry a `// SAFETY:` comment
//! on the same line or the lines directly above it.
//!
//! Unlike the determinism/no-panic lints, this one does **not** skip
//! `#[cfg(test)]` regions: unsafe code is unsafe in tests too.

use crate::config::LintConfig;
use crate::diagnostics::Sink;
use crate::scanner::{contains_token, SourceFile};

pub const NAME: &str = "unsafe-hygiene";

pub fn check(file: &SourceFile, cfg: &LintConfig, out: &mut Sink) {
    let allowed_file = cfg.allow.iter().any(|p| crate::config::path_has_prefix(&file.path, p));
    for (idx, line) in file.lines.iter().enumerate() {
        if !contains_token(&line.code, "unsafe") {
            continue;
        }
        if !allowed_file {
            out.report(
                file,
                idx,
                NAME,
                format!(
                    "`unsafe` outside the allowlisted modules ({}); all other crates are \
                     `#![forbid(unsafe_code)]` — move the code behind a safe API in \
                     fedmp-tensor or find a safe formulation",
                    cfg.allow.join(", ")
                ),
            );
        } else if !has_safety_comment(file, idx) {
            out.report(
                file,
                idx,
                NAME,
                "`unsafe` without a `// SAFETY:` comment; state the invariant that makes \
                 this sound on the line above (why the raw pointers are disjoint, why the \
                 lifetime is honored, ...)",
            );
        }
    }
}

/// A `SAFETY:` comment counts when it is on the `unsafe` line itself or
/// on the contiguous run of comment-only / attribute-only lines
/// immediately above it.
fn has_safety_comment(file: &SourceFile, idx: usize) -> bool {
    if file.lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &file.lines[i];
        let code = l.code.trim();
        if code.is_empty() || code.starts_with("#[") {
            if l.comment.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn cfg() -> LintConfig {
        LintConfig {
            allow: vec!["crates/tensor/src/parallel.rs".to_string()],
            ..LintConfig::default()
        }
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n";
        let file = scan("crates/fl/src/lm.rs", src);
        let mut out = Sink::new();
        check(&file, &cfg(), &mut out);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].line, 3);
        assert!(out.findings[0].message.contains("forbid(unsafe_code)"));
    }

    #[test]
    fn allowlisted_unsafe_needs_a_safety_comment() {
        let src = "fn f(p: *mut f32) {\n    unsafe { *p = 0.0 };\n}\n\n// SAFETY: the pointer is valid for writes by construction.\nunsafe fn g(p: *mut f32) { unsafe { *p = 1.0 } }\n";
        let file = scan("crates/tensor/src/parallel.rs", src);
        let mut out = Sink::new();
        check(&file, &cfg(), &mut out);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].line, 2);
        assert!(out.findings[0].message.contains("SAFETY:"));
    }

    #[test]
    fn safety_comment_above_attributes_still_counts() {
        let src = "// SAFETY: disjoint bands, see BandQueue docs.\n#[allow(clippy::mut_from_ref)]\nunsafe impl<T: Send> Sync for Q<T> {}\n";
        let file = scan("crates/tensor/src/parallel.rs", src);
        let mut out = Sink::new();
        check(&file, &cfg(), &mut out);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_fire() {
        let src = "// unsafe is discussed here\nlet s = \"unsafe\";\n";
        let file = scan("crates/fl/src/lm.rs", src);
        let mut out = Sink::new();
        check(&file, &cfg(), &mut out);
        assert!(out.findings.is_empty());
    }
}
