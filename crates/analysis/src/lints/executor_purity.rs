//! L6 — executor purity.
//!
//! The determinism argument for every fan-out in the workspace — the
//! round executor (`fedmp_fl::exec::ordered_map`) and the scoped
//! worker threads — is the same: *order-sensitive state never enters
//! the parallel region*. Bandit RNG draws, error-feedback
//! accumulators and trace emission all have one canonical order that
//! only the caller's serial loop can provide; per-item work must be a
//! pure function of the item plus state derived from the item's own
//! seed. PR 4–7 established this by hand-audit; this lint makes it
//! structural. Inside every `ordered_map(...)` and `.spawn(...)` call
//! extent it bans:
//!
//! - trace emission: direct tokens (`fedmp_obs`, `TraceSession`,
//!   `emit_*`, `maybe_trace`) and calls to in-crate functions whose
//!   call summary says they transitively emit;
//! - bandit mutation: `.select(` / `.observe(` / `.abandon(` — the
//!   EUCB agents advance their RNG per call, so call order is result
//!   order;
//! - RNGs captured from outside: an identifier ending in `rng` that
//!   is neither bound inside the extent (via `let`, `for` or a
//!   closure parameter) nor a function being called (`worker_rng(...)`
//!   constructs per-item RNGs and is the sanctioned pattern);
//! - captured-accumulator mutation: `.push(`/`.extend(`/`.insert(`
//!   on, or `+=` into, a name not bound inside the extent — results
//!   must come back through the executor's slot-ordered return value,
//!   never through a shared collection.
//!
//! The known precision limits: call edges do not cross crates (see
//! `callgraph`), and the first argument of `ordered_map` — evaluated
//! caller-side — is scanned along with the closure. Both err on the
//! side of firing; the escape hatch is a reasoned inline suppression,
//! e.g. `fedmp_core::run_methods`, whose fan-out is serialized up
//! front whenever tracing is requested.

use std::collections::BTreeSet;

use crate::callgraph::{crate_key, direct_trace_tokens, CrateGraph};
use crate::config::LintConfig;
use crate::diagnostics::Sink;
use crate::scanner::SourceFile;
use crate::sketch::{call_idents, Extent, Sketch};

pub const NAME: &str = "executor-purity";

const BANDIT_CALLS: &[&str] = &[".select(", ".observe(", ".abandon("];

pub fn check(
    file: &SourceFile,
    sketch: &Sketch,
    graph: &CrateGraph,
    _cfg: &LintConfig,
    out: &mut Sink,
) {
    let ckey = crate_key(&file.path);
    let mut regions = sketch.call_extents("ordered_map(");
    regions.extend(sketch.call_extents(".spawn("));
    // Nested regions (a spawn inside an ordered_map argument) would
    // double-report; keep outermost extents only.
    let outer: Vec<Extent> = regions
        .iter()
        .filter(|r| !regions.iter().any(|o| o != *r && o.contains(r)))
        .copied()
        .collect();

    // (line, detail) — dedup so one offending line reports once per
    // reason even when tokens repeat.
    let mut hits: BTreeSet<(usize, String)> = BTreeSet::new();
    for region in outer {
        let body = &sketch.text[region.start..region.end];
        let bound = bound_idents(body);

        if let Some((off, token)) = direct_trace_tokens(&sketch.text, region) {
            hits.insert((
                sketch.line_at(off),
                format!(
                    "trace emission (`{token}`) inside an executor closure; events must be \
                     emitted from the caller's serial loop so the trace order is a function \
                     of the seed, not the schedule"
                ),
            ));
        }
        for (off, name) in call_idents(&sketch.text, region) {
            if name.starts_with("emit_") || name == "maybe_trace" {
                continue; // already covered by the direct-token hit
            }
            if graph.emits(&ckey, &name) {
                hits.insert((
                    sketch.line_at(off),
                    format!(
                        "`{name}` (transitively) emits trace events but is called inside an \
                         executor closure; move the call to the caller side of the fan-out, \
                         or serialize the fan-out whenever tracing is requested"
                    ),
                ));
            }
        }
        for call in BANDIT_CALLS {
            let mut from = 0usize;
            while let Some(pos) = body[from..].find(call) {
                let at = from + pos;
                from = at + 1;
                hits.insert((
                    sketch.line_at(region.start + at),
                    format!(
                        "`{call}...)` inside an executor closure advances order-sensitive \
                         bandit/policy state; make the decisions in the caller's serial loop \
                         and pass the results into the closure",
                        call = call.trim_end_matches('(')
                    ),
                ));
            }
        }
        for (off, ident) in rng_captures(body, &bound) {
            hits.insert((
                sketch.line_at(region.start + off),
                format!(
                    "RNG `{ident}` captured from outside the executor closure; the draw order \
                     would depend on the schedule — derive a per-item RNG inside the closure \
                     from the item's own seed (see `worker_rng`)"
                ),
            ));
        }
        for (off, recv, op) in captured_mutations(body, &bound) {
            hits.insert((
                sketch.line_at(region.start + off),
                format!(
                    "`{recv}{op}` mutates state captured from outside the executor closure; \
                     completion order is schedule-dependent — return per-item results and \
                     fold them caller-side in slot order"
                ),
            ));
        }
    }
    for (line, message) in hits {
        out.report(file, line - 1, NAME, message);
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Names bound *inside* the extent: `let` patterns, `for` patterns and
/// closure parameter lists. Everything else reaching into the region
/// is a capture.
fn bound_idents(body: &str) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    let bytes = body.as_bytes();
    // `let <pat> =` / `for <pat> in`
    for (kw, stop) in [("let", "="), ("for", " in ")] {
        let mut from = 0usize;
        while let Some(pos) = body[from..].find(kw) {
            let at = from + pos;
            from = at + kw.len();
            let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
            let after_ok = bytes.get(at + kw.len()).is_some_and(|c| c.is_ascii_whitespace());
            if !before_ok || !after_ok {
                continue;
            }
            let rest = &body[at + kw.len()..];
            let end = rest.find(stop).or_else(|| rest.find(';')).unwrap_or(rest.len());
            collect_idents(&rest[..end.min(200)], &mut bound);
        }
    }
    // Closure parameter lists: a `|` opening right after `(`, `,`,
    // `=`, `{` or another control position. `||` (empty params) binds
    // nothing; `a || b` boolean-or is rejected by the prefix check.
    let mut i = 0usize;
    while let Some(pos) = body[i..].find('|') {
        let at = i + pos;
        i = at + 1;
        let prev = body[..at].trim_end().chars().next_back();
        let opens = matches!(prev, None | Some('(' | ',' | '=' | '{' | '>'));
        if !opens {
            continue;
        }
        if let Some(close) = body[at + 1..].find('|') {
            let params = &body[at + 1..at + 1 + close];
            if params.len() <= 120 && !params.contains('\n') {
                collect_idents(params, &mut bound);
                i = at + 1 + close + 1;
            }
        }
    }
    bound
}

fn collect_idents(text: &str, out: &mut BTreeSet<String>) {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if is_ident_char(bytes[i]) && !bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            let name = &text[start..i];
            if !matches!(name, "mut" | "ref" | "move") {
                out.insert(name.to_string());
            }
        } else {
            i += 1;
        }
    }
}

/// Occurrences of identifiers ending in `rng` that are used as values
/// (not called) and not bound inside the extent.
fn rng_captures(body: &str, bound: &BTreeSet<String>) -> Vec<(usize, String)> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if is_ident_char(bytes[i])
            && !bytes[i].is_ascii_digit()
            && (i == 0 || !is_ident_char(bytes[i - 1]))
        {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            let name = &body[start..i];
            if name.ends_with("rng") && bytes.get(i) != Some(&b'(') && !bound.contains(name) {
                out.push((start, name.to_string()));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// `(offset, receiver, operation)` for mutations of captured names.
fn captured_mutations(body: &str, bound: &BTreeSet<String>) -> Vec<(usize, String, String)> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    for op in [".push(", ".extend(", ".insert("] {
        let mut from = 0usize;
        while let Some(pos) = body[from..].find(op) {
            let at = from + pos;
            from = at + 1;
            if let Some(recv) = ident_ending_at(body, at) {
                if !bound.contains(&recv) {
                    out.push((at, recv, op.trim_end_matches('(').to_string()));
                }
            }
        }
    }
    let mut from = 0usize;
    while let Some(pos) = body[from..].find("+=") {
        let at = from + pos;
        from = at + 2;
        // LHS: walk back over ws, an optional `[...]` index, to the name.
        let mut j = at;
        while j > 0 && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j > 0 && bytes[j - 1] == b']' {
            if let Some(open) = body[..j].rfind('[') {
                j = open;
            }
        }
        if let Some(recv) = ident_ending_at(body, j) {
            if !bound.contains(&recv) {
                out.push((at, recv, " +=".to_string()));
            }
        }
    }
    out
}

/// The identifier whose last char sits just before byte `at`.
fn ident_ending_at(body: &str, at: usize) -> Option<String> {
    let bytes = body.as_bytes();
    let mut start = at;
    while start > 0 && is_ident_char(bytes[start - 1]) {
        start -= 1;
    }
    if start == at || bytes[start].is_ascii_digit() {
        return None;
    }
    Some(body[start..at].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use crate::sketch::Sketch;

    fn run(src: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let file = scan("crates/fl/src/x.rs", src);
        let sketch = Sketch::build(&file);
        let graph =
            crate::callgraph::build(&[("crates/fl/src/x.rs".to_string(), Sketch::build(&file))]);
        let mut out = Sink::new();
        check(&file, &sketch, &graph, &LintConfig::default(), &mut out);
        out.findings
    }

    #[test]
    fn flags_emission_bandit_rng_and_accumulator_in_closures() {
        let src = "\
fn note(r: usize) { emit_round_end(r); }\n\
pub fn run(items: Vec<u32>, mut rng: R, agent: &mut A, acc: &mut Vec<u32>) {\n\
    ordered_map(items, |i, x| {\n\
        let arm = agent.select(x);\n\
        let n = rng.next_u32();\n\
        note(i);\n\
        acc.push(x);\n\
        arm + n\n\
    });\n\
}\n";
        let out = run(src);
        let lines: Vec<usize> = out.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![4, 5, 6, 7], "{out:?}");
        assert!(out[0].message.contains("bandit"));
        assert!(out[1].message.contains("RNG `rng`"));
        assert!(out[2].message.contains("`note`"));
        assert!(out[3].message.contains("acc.push"));
    }

    #[test]
    fn sanctioned_patterns_stay_clean() {
        // Per-item RNG derived inside; results via return value; no
        // emission. `worker_rng(` is a call, not a capture.
        let src = "\
pub fn run(items: Vec<u32>, seed: u64) -> Vec<f32> {\n\
    ordered_map(items, |i, x| {\n\
        let mut rng = worker_rng(seed, i, x);\n\
        let mut local = Vec::new();\n\
        local.push(rng.next_u32());\n\
        local[0] as f32\n\
    })\n\
}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn spawn_regions_are_checked_too() {
        let src = "\
pub fn go(scope: &S, tx: Sender<u32>) {\n\
    scope.spawn(move || {\n\
        fedmp_obs::emit(|| event());\n\
        tx.send(1).ok();\n\
    });\n\
}\n";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("fedmp_obs"));
    }

    #[test]
    fn suppression_with_reason_is_honored() {
        let src = "\
fn note(r: usize) { emit_round_end(r); }\n\
pub fn run(items: Vec<u32>) {\n\
    // fedmp-analysis: allow(executor-purity) -- fan-out is serialized whenever tracing is on\n\
    ordered_map(items, |i, _x| note(i));\n\
}\n";
        let file = scan("crates/fl/src/x.rs", src);
        let sketch = Sketch::build(&file);
        let graph =
            crate::callgraph::build(&[("crates/fl/src/x.rs".to_string(), Sketch::build(&file))]);
        let mut out = Sink::new();
        check(&file, &sketch, &graph, &LintConfig::default(), &mut out);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert!(!out.used.is_empty());
    }
}
