//! L4 — no-panic.
//!
//! The federated engines and the threaded runtime must degrade into
//! typed errors, never aborts: a panicking parameter-server thread
//! poisons the whole scoped-thread topology and turns a recoverable
//! wire fault into a hung or dead process. This lint bans the
//! panic-shaped tokens — `.unwrap()`, `.expect(`, `panic!`, `todo!`,
//! `unimplemented!` — in the configured hot paths.
//!
//! `assert!` / `assert_eq!` / `debug_assert!` are deliberately *not*
//! banned: they document invariants whose violation is a bug in this
//! codebase, not a runtime condition to handle. Likewise
//! `.unwrap_or(...)`, `.unwrap_or_default()` and friends are total and
//! fine — token matching includes the `(`/`)` so they never fire.
//! Test code is exempt (panics are how tests fail).

use crate::config::LintConfig;
use crate::diagnostics::Sink;
use crate::scanner::{contains_token, SourceFile};

pub const NAME: &str = "no-panic";

/// `(needle, token_boundary, why)` — substring match for the method
/// forms (the leading `.` and trailing `(`/`)` make them exact),
/// boundary match for the macro names.
const BANNED: &[(&str, bool, &str)] = &[
    (".unwrap()", false, "convert the None/Err case into a typed RuntimeError variant"),
    (".expect(", false, "convert the None/Err case into a typed RuntimeError variant"),
    ("panic!", true, "return an error; a panicking engine thread deadlocks its peers"),
    ("todo!", true, "unfinished code must not ship on the engine hot path"),
    ("unimplemented!", true, "unfinished code must not ship on the engine hot path"),
];

pub fn check(file: &SourceFile, _cfg: &LintConfig, out: &mut Sink) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = compact(&line.code);
        for (needle, boundary, why) in BANNED {
            let hit = if *boundary { contains_token(&code, needle) } else { code.contains(needle) };
            if hit {
                out.report(
                    file,
                    idx,
                    NAME,
                    format!("`{needle}` on an engine/runtime hot path: {why}"),
                );
            }
        }
    }
}

fn compact(code: &str) -> String {
    code.chars().filter(|c| !c.is_whitespace()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn run(src: &str) -> Vec<crate::diagnostics::Diagnostic> {
        let file = scan("crates/fl/src/runtime.rs", src);
        let mut out = Sink::new();
        check(&file, &LintConfig::default(), &mut out);
        out.findings
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let out = run("let x = rx.recv().unwrap();\nlet y = m.get(&k).expect(\"present\");\npanic!(\"boom\");\n");
        assert_eq!(out.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn total_variants_and_asserts_are_fine() {
        let out = run(
            "let a = v.unwrap_or_default();\nlet b = v.unwrap_or(0);\nassert_eq!(a, b, \"invariant\");\ndebug_assert!(a >= 0);\nlet c = v . unwrap ();\n",
        );
        // The spaced `. unwrap ()` still counts — whitespace cannot
        // dodge the lint.
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn tests_comments_and_suppressions_are_exempt() {
        let out = run(
            "// .unwrap() is discussed here\n// fedmp-analysis: allow(no-panic) -- lock poisoning is unrecoverable anyway\nlet g = lock.lock().unwrap();\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
