//! In-tree stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset this repository uses: the `proptest!` macro with
//! an optional `#![proptest_config(ProptestConfig::with_cases(N))]`
//! header, range strategies over the primitive numeric types,
//! `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` assertion macros.
//!
//! Differences from real proptest, by design:
//!
//! * case generation is deterministic per (test name, case index), so
//!   failures reproduce without a persistence file;
//! * there is no shrinking — the failing inputs are printed as-is,
//!   which is enough for the small input domains used here.

use rand::{Rng, SeedableRng, StdRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Per-block configuration; only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values; the stand-in's core trait.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy yielding `Vec`s with length drawn from `len` and
    /// elements drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runs `case` for each case index with a deterministic RNG; panics
/// with the case's message on the first failure. Used by `proptest!`.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut StdRng) -> Result<(), String>,
) {
    for i in 0..config.cases {
        let mut hasher = DefaultHasher::new();
        test_name.hash(&mut hasher);
        i.hash(&mut hasher);
        let mut rng = StdRng::seed_from_u64(hasher.finish());
        if let Err(msg) = case(&mut rng) {
            panic!("proptest case {i}/{} failed: {msg}", config.cases);
        }
    }
}

/// Renders a caught panic payload as text. Used by `proptest!`.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Defines randomized tests. See the crate docs for the supported
/// subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    }),
                );
                match __outcome {
                    Ok(r) => r.map_err(|e| format!("{e}\n  inputs: {__inputs}")),
                    Err(payload) => Err(format!(
                        "panicked: {}\n  inputs: {__inputs}",
                        $crate::panic_message(payload)
                    )),
                }
            });
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Fails the current case (with formatted message) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current case if the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// The glob import everything in this repo uses.
pub mod prelude {
    /// Root alias so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..9, x in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
                Err("boom".to_string())
            });
        });
        let msg = crate::panic_message(result.unwrap_err());
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
            first.push((0u64..1000).generate(rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
            second.push((0u64..1000).generate(rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
