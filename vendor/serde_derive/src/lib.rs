//! In-tree stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Generates impls of the in-tree `serde::Serialize` / `serde::Deserialize`
//! value-tree traits. To stay dependency-free it parses the item with a
//! hand-written token walker instead of `syn`, which supports exactly
//! what this repository's types need:
//!
//! * plain (non-generic) structs with named fields, tuple structs and
//!   unit structs
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like real serde)
//! * the field attributes `#[serde(skip)]`,
//!   `#[serde(skip, default = "path::to::fn")]` and bare
//!   `#[serde(default)]` (field optional on deserialise)
//!
//! Anything outside that subset panics at compile time with a clear
//! message rather than silently mis-serialising.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the in-tree `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the in-tree `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Struct with named fields.
    Struct(Vec<Field>),
    /// Tuple struct with `n` unnamed fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    /// Path of a `fn() -> T` used for skipped fields on deserialise;
    /// `None` means `Default::default()`.
    default: Option<String>,
    /// Bare `#[serde(default)]`: the field serialises normally but may
    /// be absent on deserialise, falling back to `Default::default()`.
    or_default: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);
    let kw = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (in-tree): generic type `{name}` is not supported");
    }

    let kind = match kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("serde_derive (in-tree): unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive (in-tree): unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive (in-tree): expected struct or enum, found `{other}`"),
    };
    Item { name, kind }
}

/// Advances past leading attributes and a `pub` / `pub(...)` qualifier.
/// Returns the serde attribute contents seen, flattened.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut serde_words = Vec::new();
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    serde_words.extend(serde_attr_words(g.stream()));
                    *pos += 1;
                } else {
                    panic!("serde_derive (in-tree): `#` not followed by an attribute group");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return serde_words,
        }
    }
}

/// If the attribute group is `serde(...)`, renders its comma-separated
/// items as strings like `skip` / `default="path"`.
fn serde_attr_words(attr: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let mut items = vec![String::new()];
            for t in g.stream() {
                match &t {
                    TokenTree::Punct(p) if p.as_char() == ',' => items.push(String::new()),
                    other => items.last_mut().expect("non-empty").push_str(&other.to_string()),
                }
            }
            items.retain(|s| !s.is_empty());
            items
        }
        _ => Vec::new(),
    }
}

fn apply_serde_words(field: &mut Field, words: &[String]) {
    for w in words {
        if w == "skip" {
            field.skip = true;
        } else if w == "default" {
            field.or_default = true;
        } else if let Some(path) = w.strip_prefix("default=") {
            field.default = Some(path.trim_matches('"').to_string());
        } else {
            panic!(
                "serde_derive (in-tree): unsupported serde attribute `{w}` on field `{}`",
                field.name
            );
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive (in-tree): expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type` fields (with attributes) out of a braced body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let words = skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                panic!("serde_derive (in-tree): expected `:` after field `{name}`, found {other:?}")
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        let mut field = Field { name, skip: false, default: None, or_default: false };
        apply_serde_words(&mut field, &words);
        fields.push(field);
    }
    fields
}

/// Counts the fields of a tuple-struct / tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_token = false;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                match count_tuple_fields(g.stream()) {
                    1 => VariantShape::Newtype,
                    n => VariantShape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            } else if p.as_char() == '=' {
                panic!("serde_derive (in-tree): explicit discriminants are not supported");
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n",
                    f = f.name
                ));
            }
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let binds: Vec<String> =
                            live.iter().map(|f| f.name.clone()).collect();
                        let dots = if live.len() == fields.len() { "" } else { ", .." };
                        let pushes: Vec<String> = live
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds}{dots} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),\n",
                            binds = binds.join(", "),
                            pushes = pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------

fn default_expr(f: &Field) -> String {
    match &f.default {
        Some(path) => format!("{path}()"),
        None => "::std::default::Default::default()".to_string(),
    }
}

fn gen_named_ctor(ty_path: &str, err_ty: &str, fields: &[Field], obj_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: {}", f.name, default_expr(f))
            } else if f.or_default {
                format!(
                    "{f}: ::serde::__get_field_or_default({obj_var}, \"{f}\", \"{err_ty}\")?",
                    f = f.name
                )
            } else {
                format!("{f}: ::serde::__get_field({obj_var}, \"{f}\", \"{err_ty}\")?", f = f.name)
            }
        })
        .collect();
    format!("{ty_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let ctor = gen_named_ctor(name, name, fields, "__obj");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\nOk({ctor})"
            )
        }
        Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\nif __arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong tuple arity for {name}\")); }}\nOk({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Unit => format!("let _ = __v; Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Newtype => tagged_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload).map_err(|e| ::serde::DeError::new(format!(\"{name}::{vn}: {{e}}\")))?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __arr = __payload.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}::{vn}\"))?; if __arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}::{vn}\")); }} Ok({name}::{vn}({})) }},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let ctor = gen_named_ctor(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            fields,
                            "__o",
                        );
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __o = __payload.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}::{vn}\"))?; Ok({ctor}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{\n    match __s {{\n{unit_arms}        _ => return Err(::serde::DeError::new(format!(\"unknown {name} variant `{{__s}}`\"))),\n    }}\n}}\nlet __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\nif __obj.len() != 1 {{ return Err(::serde::DeError::new(\"expected single-key object for {name}\")); }}\nlet (__tag, __payload) = &__obj[0];\nmatch __tag.as_str() {{\n{tagged_arms}    __other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{__other}}`\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
    )
}
