//! In-tree stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only the `channel` module is provided: a bounded multi-producer /
//! multi-consumer channel built on a `Mutex<VecDeque>` + two `Condvar`s.
//! Both [`channel::Sender`] and [`channel::Receiver`] are cloneable; the
//! channel disconnects when either side's handles all drop, matching the
//! semantics the threaded FL runtime relies on.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message back to the caller.
    #[derive(Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam, Debug elides the message so `T` needs no
    // bound (`.expect()` on send requires the error to be Debug).
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel with room for `cap` in-flight messages.
    /// `cap` of zero is rounded up to one (a rendezvous channel is not
    /// needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(cap.max(1))),
            cap: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Blocks until there is queue room, then enqueues `msg`.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
                if queue.len() < shared.cap {
                    queue.push_back(msg);
                    shared.not_empty.notify_one();
                    return Ok(());
                }
                queue = shared.not_full.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    shared.not_full.notify_one();
                    return Ok(msg);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = shared.not_empty.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Returns a message if one is queued, without blocking.
        pub fn try_recv(&self) -> Option<T> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let msg = queue.pop_front();
            if msg.is_some() {
                self.shared.not_full.notify_one();
            }
            msg
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError};

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        handle.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = bounded(8);
        let rx2 = rx1.clone();
        tx.send(10).unwrap();
        tx.send(20).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = vec![a, b];
        got.sort();
        assert_eq!(got, vec![10, 20]);
    }
}
