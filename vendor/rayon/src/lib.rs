//! In-tree stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! `into_par_iter()` / `par_iter()` here simply return the ordinary
//! sequential iterator, so every adaptor (`map`, `zip`, `enumerate`,
//! `collect`, …) is the `std::iter` one and results are identical to —
//! because they are — the sequential computation. The FL engines that
//! call these only need *ordered* map/collect semantics; the compute
//! they fan out funnels into `fedmp-tensor`'s GEMM kernels, which carry
//! their own real row-band thread pool (`fedmp_tensor::parallel`,
//! `FEDMP_THREADS`). Keeping worker-level dispatch sequential and
//! kernel-level bands parallel gives one thread-count knob and one
//! determinism argument instead of two nested schedulers.

/// Conversion into a "parallel" (here: sequential) iterator by value.
pub trait IntoParallelIterator {
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;
    /// Converts `self` into an iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Conversion into a "parallel" (here: sequential) iterator by shared
/// reference.
pub trait IntoParallelRefIterator<'a> {
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: 'a;
    /// Iterates over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, I: 'a + ?Sized> IntoParallelRefIterator<'a> for I
where
    &'a I: IntoIterator,
{
    type Iter = <&'a I as IntoIterator>::IntoIter;
    type Item = <&'a I as IntoIterator>::Item;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// The import surface mirrored from `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn vec_into_par_iter_maps_in_order() {
        let v: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![2, 4, 6]);
    }

    #[test]
    fn range_and_zip_and_enumerate() {
        let base = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = (0..3usize)
            .into_par_iter()
            .zip(base.par_iter())
            .map(|(i, &b)| (i, b))
            .enumerate()
            .map(|(n, (i, b))| {
                assert_eq!(n, i);
                (i, b + 1)
            })
            .collect();
        assert_eq!(out, vec![(0, 11), (1, 21), (2, 31)]);
    }
}
