//! In-tree stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly. A poisoned std lock means a
//! thread panicked while holding it; matching `parking_lot` semantics,
//! we hand the data back anyway.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1usize);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
