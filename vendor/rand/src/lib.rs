//! In-tree stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Exposes the `rand` 0.8 API surface this repository uses — `StdRng`,
//! [`Rng`], [`SeedableRng`] — backed by xoshiro256++ seeded through
//! SplitMix64. The stream differs from upstream `rand`'s StdRng (which
//! is ChaCha12 and documented as non-portable across versions anyway);
//! all experiments in this repo only require self-consistency: the same
//! seed must reproduce the same run on every platform, which this
//! generator guarantees.

pub mod rngs {
    pub use crate::StdRng;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding for xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers), mirroring `rand`'s `Standard`
/// distribution.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard(rng: &mut StdRng) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> f32 {
        // 24 high bits → [0, 1) with full f32 mantissa resolution.
        ((rng.next_u64_impl() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> f64 {
        ((rng.next_u64_impl() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> u32 {
        (rng.next_u64_impl() >> 32) as u32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> u64 {
        rng.next_u64_impl()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> bool {
        rng.next_u64_impl() & 1 == 1
    }
}

/// Range arguments accepted by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64_impl() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64_impl() as $t;
                }
                lo + (rng.next_u64_impl() % span) as $t
            }
        }
    )*};
}

int_range!(usize, u8, u16, u32, u64);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64_impl() % span) as i128) as $t
            }
        }
    )*};
}

signed_range!(i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Draws a sample of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T;

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        // Inclusive upper bound is reachable.
        let mut hit_top = false;
        for _ in 0..200 {
            if rng.gen_range(0usize..=1) == 1 {
                hit_top = true;
            }
        }
        assert!(hit_top);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let _ = a.gen::<u64>();
        let mut b = a.clone();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
