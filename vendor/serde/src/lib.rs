//! In-tree stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Real serde separates data formats from data structures through the
//! visitor-based `Serializer`/`Deserializer` traits. The only format
//! this repository uses is JSON (checkpoints, bench results), so the
//! stand-in collapses the architecture to a value tree: [`Serialize`]
//! renders a type into a [`Value`], [`Deserialize`] reads one back, and
//! the in-tree `serde_json` handles text. The `derive` feature
//! re-exports the matching derive macros from `serde_derive`, which
//! understand the subset of attributes this repo uses (`#[serde(skip)]`
//! and `#[serde(skip, default = "path")]`).

mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when a [`Value`] cannot be read back into a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types readable back from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads an instance out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a named field in an object, with a typed error mentioning
/// the surrounding struct. Used by generated `Deserialize` impls.
pub fn __get_field<T: Deserialize>(
    obj: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    let v = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("{ty}: missing field `{key}`")))?;
    T::from_value(v).map_err(|e| DeError::new(format!("{ty}.{key}: {e}")))
}

/// Like [`__get_field`], but a missing key falls back to the field
/// type's `Default` — the backing for `#[serde(default)]`, which keeps
/// old serialised records readable after a struct gains fields.
pub fn __get_field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("{ty}.{key}: {e}"))),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

// Non-negative signed values normalise to `U64` so equality holds
// across a print/parse round trip (the parser reads `1` as `U64(1)`).
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output; HashMap iteration order is unspecified.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::new("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected 2-element array"))?;
        if arr.len() != 2 {
            return Err(DeError::new("expected 2-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected 3-element array"))?;
        if arr.len() != 3 {
            return Err(DeError::new("expected 3-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?, C::from_value(&arr[2])?))
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
