//! The JSON-shaped value tree shared by `serde` and `serde_json`.

use std::ops::Index;

/// A JSON number: integers keep full 64-bit precision, everything else
/// is an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
}

impl Number {
    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

/// A dynamically typed JSON value.
///
/// Objects preserve insertion order (`Vec` of pairs) so serialised
/// output matches the order fields are written, like `serde_json` with
/// `preserve_order`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key–value pairs, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key–value pairs, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// `value["key"]` — yields `Null` for missing keys, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// `value[i]` — yields `Null` out of bounds, like serde_json.
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(v["a"], Value::Bool(true));
        assert!(v["missing"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn number_conversions() {
        assert_eq!(Value::Number(Number::U64(7)).as_i64(), Some(7));
        assert_eq!(Value::Number(Number::I64(-7)).as_u64(), None);
        assert_eq!(Value::Number(Number::F64(1.5)).as_f64(), Some(1.5));
        assert_eq!(Value::Number(Number::F64(1.5)).as_u64(), None);
    }

    #[test]
    fn string_equality() {
        let v = Value::String("FedMP".into());
        assert!(v == "FedMP");
        assert!(v != "BSP");
    }
}
