//! In-tree stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the API surface `crates/bench/benches/micro.rs` uses —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, and `Bencher::iter` —
//! with a plain wall-clock measurement loop instead of criterion's
//! statistical machinery: calibrate the iteration count to a target
//! sample time, take a handful of samples, report the best mean.
//! Results print as `name ... <time>/iter` on stdout.

use std::time::{Duration, Instant};

/// Target duration of one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Number of measurement samples; the fastest is reported.
const SAMPLES: usize = 5;

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration of the fastest sample, set by `iter`.
    best_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the best observed mean time per
    /// iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit the sample target?
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET / 4 || iters >= 1 << 20 {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                let target = SAMPLE_TARGET.as_nanos() as f64;
                iters = ((target / per_iter.max(1.0)).ceil() as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        // Measure.
        let mut best = f64::INFINITY;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            if per_iter < best {
                best = per_iter;
            }
        }
        self.best_ns = best;
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter value alone.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and parameter.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark and prints its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { best_ns: f64::NAN };
        f(&mut b);
        print_result(name, b.best_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { best_ns: f64::NAN };
        f(&mut b, input);
        print_result(&format!("{}/{}", self.name, id.0), b.best_ns);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn print_result(name: &str, ns: f64) {
    let text = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    };
    println!("bench: {name:<48} {text}/iter");
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { best_ns: f64::NAN };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.best_ns.is_finite() && b.best_ns >= 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(64).0, "64");
        assert_eq!(BenchmarkId::new("matmul", 64).0, "matmul/64");
    }
}
