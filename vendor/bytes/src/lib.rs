//! In-tree stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Provides the subset the wire format uses: an immutable, cheaply
//! cloneable [`Bytes`] handle, a growable [`BytesMut`] builder, and the
//! [`Buf`]/[`BufMut`] cursor traits with little-endian accessors.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes of reserved space.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
///
/// Each `get_*` consumes from the front; implemented for `&[u8]` so a
/// plain slice can be decoded in place.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(7);
        buf.put_u8(1);
        buf.put_f32_le(1.5);
        buf.put_slice(b"ok");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 4 + 2 + 1 + 4 + 2);

        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u16_le(), 7);
        assert_eq!(rd.get_u8(), 1);
        assert_eq!(rd.get_f32_le(), 1.5);
        assert_eq!(rd.chunk(), b"ok");
        rd.advance(2);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
