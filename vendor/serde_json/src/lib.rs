//! In-tree stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! The in-tree `serde` already produces a JSON-shaped [`Value`] tree;
//! this crate adds the text layer (parse / print) plus the typed entry
//! points (`to_string`, `to_vec`, `from_str`, `from_slice`) and the
//! [`json!`] macro. Floats print with Rust's shortest round-trip
//! formatting so `f32` tensors survive save → load bit-exactly.

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};

/// Error from parsing or re-shaping JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Renders any serialisable type as a [`Value`]. Used by [`json!`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON bytes into any deserialisable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, fv, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // `{:?}` is shortest text that parses back to the same
                // f64, and keeps a `.0` on integral values.
                out.push_str(&format!("{v:?}"));
            } else {
                // JSON has no NaN / Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our own
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n = if is_float {
            Number::F64(text.parse().map_err(|_| Error::new(format!("bad number `{text}`")))?)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U64(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I64(i)
        } else {
            Number::F64(text.parse().map_err(|_| Error::new(format!("bad number `{text}`")))?)
        };
        Ok(Value::Number(n))
    }
}

// ---------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax with expression
/// interpolation, in the style of `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`]: a token-tree muncher that splits
/// array elements and object entries on top-level commas.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // -------------------- array element munching --------------------
    // Finished: emit the accumulated elements.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    // Comma between elements.
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };
    // Next element is null.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($rest)*)
    };
    // Next element is a nested array.
    (@array [$($elems:expr,)*] [$($inner:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($inner)*]),] $($rest)*)
    };
    // Next element is a nested object.
    (@array [$($elems:expr,)*] {$($inner:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($inner)*}),] $($rest)*)
    };
    // Next element is an expression followed by more elements.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next),] $($rest)*)
    };
    // Last element, no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        vec![$($elems,)* $crate::to_value(&$last)]
    };

    // -------------------- object entry munching --------------------
    // Finished: emit the accumulated pairs.
    (@object [$($pairs:expr,)*]) => {
        vec![$($pairs,)*]
    };
    // Comma between entries.
    (@object [$($pairs:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@object [$($pairs,)*] $($rest)*)
    };
    // Entry whose value is null.
    (@object [$($pairs:expr,)*] $key:tt : null $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* ($key.to_string(), $crate::Value::Null),] $($rest)*)
    };
    // Entry whose value is a nested array.
    (@object [$($pairs:expr,)*] $key:tt : [$($inner:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* ($key.to_string(), $crate::json_internal!([$($inner)*])),] $($rest)*)
    };
    // Entry whose value is a nested object.
    (@object [$($pairs:expr,)*] $key:tt : {$($inner:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* ($key.to_string(), $crate::json_internal!({$($inner)*})),] $($rest)*)
    };
    // Entry whose value is an expression, more entries follow.
    (@object [$($pairs:expr,)*] $key:tt : $value:expr , $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* ($key.to_string(), $crate::to_value(&$value)),] $($rest)*)
    };
    // Final entry, no trailing comma.
    (@object [$($pairs:expr,)*] $key:tt : $value:expr) => {
        vec![$($pairs,)* ($key.to_string(), $crate::to_value(&$value))]
    };

    // -------------------- entry points --------------------
    (null) => {
        $crate::Value::Null
    };
    ([]) => {
        $crate::Value::Array(Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object(Vec::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object($crate::json_internal!(@object [] $($tt)+))
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = json!({
            "name": "fedmp",
            "rounds": 12,
            "acc": 0.8125,
            "tags": ["a", "b"],
            "extra": null,
            "nested": {"ok": true},
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["name"], "fedmp");
        assert_eq!(back["rounds"].as_u64(), Some(12));
        assert_eq!(back["acc"].as_f64(), Some(0.8125));
        assert_eq!(back["tags"][1], "b");
        assert!(back["extra"].is_null());
        assert_eq!(back["nested"]["ok"].as_bool(), Some(true));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[0.1f32, -1.5e-8, 3.4e38, 1.0, std::f32::consts::PI] {
            let text = to_string(&x).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn nonfinite_prints_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tand \\ unicode é";
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"rows": [{"x": 1}, {"x": 2}], "done": true});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn interpolation_in_macro() {
        let xs = [1.0f64, 2.0];
        let name = String::from("run");
        let v =
            json!({"series": xs.iter().map(|x| json!({"v": x})).collect::<Vec<_>>(), "name": name});
        assert_eq!(v["series"][1]["v"].as_f64(), Some(2.0));
        assert_eq!(v["name"], "run");
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("123 45").is_err());
    }

    #[test]
    fn integer_widths() {
        let back: Value = from_str("[18446744073709551615, -9223372036854775808]").unwrap();
        assert_eq!(back[0].as_u64(), Some(u64::MAX));
        assert_eq!(back[1].as_i64(), Some(i64::MIN));
    }
}
