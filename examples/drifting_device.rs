//! Dynamic heterogeneity: a worker whose effective capability drifts
//! over time (thermal throttling, background load — the paper's §I
//! motivation for *online* ratio adaptation). The E-UCB agent's
//! discount factor λ lets it keep tracking the moving optimum.
//!
//! ```text
//! cargo run --release --example drifting_device
//! ```

use fedmp::bandit::{Bandit, EUcbAgent, EUcbConfig};
use fedmp::edgesim::DriftModel;
use fedmp::tensor::seeded_rng;

fn main() {
    // The device's optimal pruning ratio grows as its capability m
    // shrinks: crudely, alpha* = clamp(0.7 · (1 − m/2), 0.05, 0.75).
    let optimal = |m: f64| ((0.7 * (1.0 - m / 2.0)) as f32).clamp(0.05, 0.75);

    let mut drift = DriftModel::new(1, 0.05, 0.12);
    let mut rng = seeded_rng(42);
    let mut agent =
        EUcbAgent::new(EUcbConfig { lambda: 0.9, explore_weight: 0.1, ..Default::default() });

    println!("round  capability  alpha*  alpha(chosen)  |err|");
    let mut tracking_err = 0.0f32;
    let rounds = 240;
    for k in 0..rounds {
        let m = drift.step(&mut rng)[0];
        let target = optimal(m);
        let alpha = agent.select();
        let reward = 1.0 - 3.0 * (alpha - target).abs();
        agent.observe(reward);
        if k >= rounds - 60 {
            tracking_err += (alpha - target).abs();
        }
        if k % 30 == 0 {
            println!(
                "{k:>5}  {m:>10.2}  {target:>6.2}  {alpha:>13.2}  {:>5.2}",
                (alpha - target).abs()
            );
        }
    }
    println!(
        "\nmean |alpha − alpha*| over the last 60 rounds: {:.3} (uniform-random policy ≈ 0.27)",
        tracking_err / 60.0
    );
    println!("partition regions learned: {}", agent.num_regions());
}
