//! The threaded PS/worker runtime: one OS thread per worker, models
//! moved as checksummed binary wire frames — the closest in-process
//! analogue of the paper's physical prototype. Verifies that it produces
//! exactly the same training history as the in-process loop engine.
//!
//! ```text
//! cargo run --release --example threaded_runtime
//! ```

use fedmp::fl::{run_fedmp, run_fedmp_threaded, FedMpOptions, FlSetup};
use fedmp::prelude::*;

fn main() {
    let spec = {
        let mut s = ExperimentSpec::small(TaskKind::CnnMnist);
        s.fl.rounds = 6;
        s.fl.eval_every = 2;
        s
    };
    let built = spec.build();
    let setup =
        FlSetup::with_cost_scale(&built.task, built.devices.clone(), built.time, built.cost_scale);
    let opts = FedMpOptions::default();

    println!("running the sequential loop engine…");
    let sequential = run_fedmp(&spec.fl, &setup, built.model.clone(), &opts);
    println!("running the threaded runtime (1 thread/worker, wire frames)…");
    let threaded = run_fedmp_threaded(&spec.fl, &setup, built.model.clone(), &opts)
        .expect("clean transport: only protocol violations are terminal");

    println!("\n  round   loop-engine loss   threaded loss   identical?");
    for (a, b) in sequential.rounds.iter().zip(threaded.rounds.iter()) {
        println!(
            "  {:>5}   {:>16.4}   {:>13.4}   {}",
            a.round,
            a.train_loss,
            b.train_loss,
            a.train_loss == b.train_loss && a.ratios == b.ratios && a.eval == b.eval
        );
    }

    // Show the actual wire cost of one exchange.
    let full_frame = fedmp::fl::encode_state(&built.model.state());
    println!("\nfull-model wire frame: {} bytes", full_frame.len());
    let plan = fedmp::pruning::plan_sequential(&built.model, built.task.input_chw, 0.6);
    let sub = fedmp::pruning::extract_sequential(&built.model, &plan);
    let sub_frame = fedmp::fl::encode_state(&sub.state());
    println!(
        "alpha=0.6 sub-model frame: {} bytes ({:.0}% of full)",
        sub_frame.len(),
        100.0 * sub_frame.len() as f64 / full_frame.len() as f64
    );
}
