//! Asynchronous FedMP (paper Algorithm 2): the PS aggregates the first
//! `m` arrivals per round instead of waiting for stragglers. Compares
//! Asyn-FL, Asyn-FedMP and synchronous FedMP — a miniature of Fig. 12.
//!
//! ```text
//! cargo run --release --example async_federation
//! ```

use fedmp::prelude::*;

fn main() {
    let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
    spec.workers = 4;
    spec.level = HeterogeneityLevel::High; // stragglers make async shine
    spec.fl.rounds = 16;
    spec.fl.eval_every = 2;

    let methods = [Method::AsynFl { m: 2 }, Method::AsynFedMp { m: 2 }, Method::FedMp];
    let histories: Vec<RunHistory> = methods.iter().map(|&m| run_method(&spec, m)).collect();

    let min_final =
        histories.iter().filter_map(|h| h.final_accuracy()).fold(f32::INFINITY, f32::min);
    let target = min_final * 0.9;

    println!("m = 2 of {} workers, High heterogeneity", spec.workers);
    println!("target accuracy: {:.0}%\n", target * 100.0);
    for h in &histories {
        let t = h.time_to_accuracy(target);
        println!(
            "  {:<11} final {:.1}%   time-to-target {}",
            h.method,
            h.final_accuracy().unwrap_or(0.0) * 100.0,
            t.map_or("-".to_string(), |v| format!("{v:.0}s")),
        );
    }
    println!("\nAsyn-FedMP's early rounds finish as soon as the {}-th worker arrives;", 2);
    println!("synchronous FedMP aggregates everyone and usually wins on information per round.");
}
