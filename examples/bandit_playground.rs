//! E-UCB playground: watch the partition tree grow as the agent learns
//! which pruning ratio fits a synthetic device. Demonstrates the θ
//! granularity effect of Fig. 4 in isolation.
//!
//! ```text
//! cargo run --release --example bandit_playground
//! ```

use fedmp::prelude::*;

fn main() {
    // Synthetic environment: the device is happiest (fastest + still
    // learning) at α* = 0.55; reward decays with distance.
    let env = |alpha: f32| 1.0 - 2.5 * (alpha - 0.55).abs();

    for theta in [0.25f32, 0.05, 0.01] {
        let cfg = EUcbConfig { theta, lambda: 0.99, explore_weight: 0.1, ..Default::default() };
        let mut agent = EUcbAgent::new(cfg);
        let mut late_err = 0.0f32;
        let rounds = 200;
        for k in 0..rounds {
            let a = agent.select();
            agent.observe(env(a));
            if k >= rounds - 50 {
                late_err += (a - 0.55).abs();
            }
        }
        println!(
            "theta = {theta:<5} -> {:>3} regions, mean |alpha - alpha*| over last 50 rounds = {:.3}",
            agent.num_regions(),
            late_err / 50.0
        );
    }
    println!(
        "\nSmaller theta lets the tree localise the optimum more precisely (cf. paper Fig. 4)."
    );
}
