//! Structured pruning walkthrough: plan, extract, recover — the R2SP
//! primitives on a single model, outside any FL loop.
//!
//! ```text
//! cargo run --release --example prune_a_model
//! ```

use fedmp::nn::{model_cost, state_sub, zoo};
use fedmp::pruning::{extract_sequential, plan_sequential, recover_state, sparse_state};
use fedmp::tensor::seeded_rng;

fn main() {
    let mut rng = seeded_rng(7);
    let global = zoo::cnn_mnist(0.5, &mut rng);
    let chw = (1usize, 28usize, 28usize);
    let full_cost = model_cost(&global, chw);
    println!(
        "global model: {} params, {:.1} MFLOPs/sample",
        full_cost.params,
        full_cost.flops_per_sample as f64 / 1e6
    );

    for ratio in [0.25f32, 0.5, 0.75] {
        // ① Plan: L1-rank filters/neurons, keep the top (1−α) per layer.
        let plan = plan_sequential(&global, chw, ratio);
        // ② Extract: materialise the physically smaller sub-model.
        let mut sub = extract_sequential(&global, &plan);
        let cost = model_cost(&sub, chw);
        println!(
            "alpha = {ratio}: sub-model {} params ({:.0}% of full), {:.1} MFLOPs/sample",
            cost.params,
            100.0 * cost.params as f64 / full_cost.params as f64,
            cost.flops_per_sample as f64 / 1e6
        );

        // ③ Recover + residual: the R2SP identity.
        let recovered = recover_state(&sub, &plan, &global);
        let sparse = sparse_state(&global, &plan);
        let residual = state_sub(&global.state(), &sparse);
        let rebuilt = fedmp::nn::state_add(&recovered, &residual);
        let exact = rebuilt.iter().zip(global.state().iter()).all(|(a, b)| a.tensor == b.tensor);
        println!("   recover(extract(g)) + (g - sparse(g)) == g ? {exact}");
        assert!(exact);
        let _ = sub.num_params();
    }
}
