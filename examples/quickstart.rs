//! Quickstart: train a CNN with FedMP on a simulated heterogeneous edge
//! fleet and compare it against full-model FedAvg.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedmp::prelude::*;

fn main() {
    // A laptop-scale experiment: the paper's CNN on an MNIST-like
    // synthetic task, 4 workers drawn from clusters A+B.
    let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
    spec.fl.rounds = 15;
    spec.fl.eval_every = 3;

    println!("Running Syn-FL (full-model FedAvg)…");
    let synfl = run_method(&spec, Method::SynFl);
    println!("Running FedMP (adaptive pruning + R2SP)…");
    let fedmp = run_method(&spec, Method::FedMp);

    println!("\n  round   Syn-FL acc   FedMP acc   FedMP ratios (first worker)");
    for (a, b) in synfl.rounds.iter().zip(fedmp.rounds.iter()) {
        if let (Some((_, sa)), Some((_, fa))) = (a.eval, b.eval) {
            println!(
                "  {:>5}   {:>9.1}%   {:>8.1}%   alpha = {:.2}",
                a.round,
                sa * 100.0,
                fa * 100.0,
                b.ratios.first().copied().unwrap_or(0.0)
            );
        }
    }

    let target = synfl.final_accuracy().unwrap_or(0.5) * 0.9;
    let t_syn = synfl.time_to_accuracy(target);
    let t_fed = fedmp.time_to_accuracy(target);
    println!("\nTime to {:.0}% accuracy (virtual seconds):", target * 100.0);
    println!("  Syn-FL: {:?}", t_syn);
    println!("  FedMP:  {:?}", t_fed);
    if let (Some(a), Some(b)) = (t_syn, t_fed) {
        println!("  speedup: {:.2}x", a / b);
    }
}
