//! Heterogeneity study: how the paper's five methods cope as the fleet
//! degrades from Low (all cluster-A devices) to High (40% cluster C) —
//! a miniature of Fig. 8.
//!
//! ```text
//! cargo run --release --example heterogeneous_fleet
//! ```

use fedmp::prelude::*;

fn main() {
    let levels = [
        ("Low", HeterogeneityLevel::Low),
        ("Medium", HeterogeneityLevel::Medium),
        ("High", HeterogeneityLevel::High),
    ];
    let methods = [Method::SynFl, Method::UpFl, Method::FedProx, Method::FlexCom, Method::FedMp];

    for (label, level) in levels {
        let mut spec = ExperimentSpec::small(TaskKind::CnnMnist);
        spec.level = level;
        spec.fl.rounds = 12;
        spec.fl.eval_every = 2;

        let histories: Vec<RunHistory> = methods.iter().map(|&m| run_method(&spec, m)).collect();
        let min_final =
            histories.iter().filter_map(|h| h.final_accuracy()).fold(f32::INFINITY, f32::min);
        let target = min_final * 0.9;

        println!("\nheterogeneity = {label} (target {:.0}% accuracy)", target * 100.0);
        let base = histories[0].time_to_accuracy(target);
        for h in &histories {
            let t = h.time_to_accuracy(target);
            let speedup = match (base, t) {
                (Some(b), Some(t)) => format!("{:.2}x", b / t),
                _ => "-".into(),
            };
            println!(
                "  {:<10} time-to-target {:>10}   speedup vs Syn-FL {speedup}",
                h.method,
                t.map_or("-".to_string(), |v| format!("{v:.0}s")),
            );
        }
    }
}
