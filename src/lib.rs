//! # fedmp
//!
//! Umbrella crate of the FedMP reproduction: re-exports the public API
//! of every workspace crate so examples and downstream users need a
//! single dependency.
//!
//! * [`tensor`] — dense f32 tensor substrate
//! * [`nn`] — layers, models, optimizers, the model zoo
//! * [`data`] — synthetic datasets and federated partitioners
//! * [`pruning`] — structured pruning + R2SP primitives
//! * [`bandit`] — the E-UCB pruning-ratio policy
//! * [`edgesim`] — the heterogeneous edge simulator
//! * [`fl`] — the FL engine and every baseline
//! * [`obs`] — structured trace events, run manifests, trace tooling
//! * [`core`] — experiment specs, the method dispatcher, reports
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory.

// No `unsafe` anywhere in this crate: the only sanctioned unsafe code
// in the workspace lives in `fedmp-tensor`'s band scheduler. Backed
// statically by the `unsafe-hygiene` lint in `fedmp-analysis`.
#![forbid(unsafe_code)]
pub use fedmp_bandit as bandit;
pub use fedmp_core as core;
pub use fedmp_data as data;
pub use fedmp_edgesim as edgesim;
pub use fedmp_fl as fl;
pub use fedmp_nn as nn;
pub use fedmp_obs as obs;
pub use fedmp_pruning as pruning;
pub use fedmp_tensor as tensor;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use fedmp_bandit::{Bandit, EUcbAgent, EUcbConfig};
    pub use fedmp_core::{run_method, ExperimentSpec, Method, TaskKind};
    pub use fedmp_edgesim::{HeterogeneityLevel, TimeModel};
    pub use fedmp_fl::{FlConfig, FlSetup, RunHistory};
    pub use fedmp_nn::{zoo, Sequential};
    pub use fedmp_tensor::{seeded_rng, Tensor};
}
